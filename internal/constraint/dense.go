// Package constraint implements the two constraint languages of "A Database
// Approach for Modeling and Querying Video Data" (Decleir, Hacid,
// Kouloumdjian, ICDE 1999):
//
//   - dense linear order inequality constraints (Definition 2): formulas
//     built from primitive atoms x θ y and x θ c with θ ∈ {<, ≤, =, ≠, ≥, >},
//     interpreted over a countably infinite dense order (here: the reals),
//     closed under conjunction and disjunction;
//   - set-order constraints (Definition 3): c ∈ X̃, X̃ ⊆ s, s ⊆ X̃ and X̃ ⊆ Ỹ
//     over variables ranging over finite sets of constants.
//
// Formulas are kept in disjunctive normal form. Single-variable formulas
// (the restricted class C̃ of Section 5.2 used as duration attribute values)
// convert losslessly to and from interval.Generalized, which makes
// satisfiability and entailment for them exact interval operations. A
// closure-based solver decides satisfiability and entailment for
// multi-variable conjunctions (the point algebra), and a bound-propagation
// solver does the same for set-order constraints following the quantifier
// elimination approach of Srivastava, Ramakrishnan and Revesz (PPCP'94).
package constraint

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Op is a dense-order comparison operator.
type Op uint8

// The six comparison operators of Definition 2 (=, <, ≤ and their
// negations ≠, ≥, >).
const (
	Lt Op = iota // <
	Le           // ≤
	Eq           // =
	Ne           // ≠
	Ge           // ≥
	Gt           // >
)

var opNames = [...]string{Lt: "<", Le: "<=", Eq: "=", Ne: "!=", Ge: ">=", Gt: ">"}

// String returns the ASCII spelling of the operator.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Negate returns the complementary operator (¬(x < y) ⇔ x ≥ y, etc.).
func (o Op) Negate() Op {
	switch o {
	case Lt:
		return Ge
	case Le:
		return Gt
	case Eq:
		return Ne
	case Ne:
		return Eq
	case Ge:
		return Lt
	default:
		return Le
	}
}

// Flip returns the operator with its operands swapped (x < y ⇔ y > x).
func (o Op) Flip() Op {
	switch o {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Ge:
		return Le
	case Gt:
		return Lt
	default:
		return o // = and ≠ are symmetric
	}
}

// Holds evaluates the operator on concrete values.
func (o Op) Holds(a, b float64) bool {
	switch o {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Ge:
		return a >= b
	default:
		return a > b
	}
}

// ParseOp parses an operator token ("<", "<=", "=", "==", "!=", "<>", ">=",
// ">").
func ParseOp(s string) (Op, error) {
	switch s {
	case "<":
		return Lt, nil
	case "<=", "=<", "≤":
		return Le, nil
	case "=", "==":
		return Eq, nil
	case "!=", "<>", "≠":
		return Ne, nil
	case ">=", "=>", "≥":
		return Ge, nil
	case ">":
		return Gt, nil
	default:
		return 0, fmt.Errorf("constraint: unknown operator %q", s)
	}
}

// Term is either a variable or a constant of the dense order.
type Term struct {
	Var   string // non-empty for a variable term
	Const float64
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(value float64) Term { return Term{Const: value} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return strconv.FormatFloat(t.Const, 'g', -1, 64)
}

// Atom is a primitive dense-order constraint Left Op Right.
type Atom struct {
	Left  Term
	Op    Op
	Right Term
}

// NewAtom builds an atom.
func NewAtom(left Term, op Op, right Term) Atom { return Atom{Left: left, Op: op, Right: right} }

// VarCmp builds the common form "v op c".
func VarCmp(v string, op Op, c float64) Atom { return Atom{Left: V(v), Op: op, Right: C(c)} }

// String renders the atom, e.g. "t > 10".
func (a Atom) String() string {
	return fmt.Sprintf("%s %s %s", a.Left, a.Op, a.Right)
}

// Vars appends the variables of the atom to dst and returns it.
func (a Atom) Vars(dst []string) []string {
	if a.Left.IsVar() {
		dst = append(dst, a.Left.Var)
	}
	if a.Right.IsVar() {
		dst = append(dst, a.Right.Var)
	}
	return dst
}

// Eval evaluates the atom under the valuation; it returns an error if a
// variable is unbound.
func (a Atom) Eval(val map[string]float64) (bool, error) {
	l, err := a.Left.value(val)
	if err != nil {
		return false, err
	}
	r, err := a.Right.value(val)
	if err != nil {
		return false, err
	}
	return a.Op.Holds(l, r), nil
}

func (t Term) value(val map[string]float64) (float64, error) {
	if !t.IsVar() {
		return t.Const, nil
	}
	v, ok := val[t.Var]
	if !ok {
		return 0, fmt.Errorf("constraint: unbound variable %q", t.Var)
	}
	return v, nil
}

// Conj is a conjunction of atoms.
type Conj []Atom

// String renders the conjunction with "and" separators; the empty
// conjunction (vacuously true) renders as "true".
func (c Conj) String() string {
	if len(c) == 0 {
		return "true"
	}
	parts := make([]string, len(c))
	for i, a := range c {
		parts[i] = a.String()
	}
	return strings.Join(parts, " and ")
}

// Eval evaluates the conjunction under the valuation.
func (c Conj) Eval(val map[string]float64) (bool, error) {
	for _, a := range c {
		ok, err := a.Eval(val)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// Vars appends the variables of the conjunction to dst and returns it.
func (c Conj) Vars(dst []string) []string {
	for _, a := range c {
		dst = a.Vars(dst)
	}
	return dst
}

// Formula is a dense-order constraint in disjunctive normal form: a
// disjunction of conjunctions of atoms. The zero value (no disjuncts) is
// unsatisfiable (false); a Formula containing an empty Conj is valid
// (true).
type Formula []Conj

// False returns the unsatisfiable formula.
func False() Formula { return nil }

// True returns the valid formula.
func True() Formula { return Formula{Conj{}} }

// FromAtom lifts a single atom to a formula.
func FromAtom(a Atom) Formula { return Formula{Conj{a}} }

// And returns the conjunction of two DNF formulas (distributing).
func (f Formula) And(g Formula) Formula {
	var out Formula
	for _, cf := range f {
		for _, cg := range g {
			conj := make(Conj, 0, len(cf)+len(cg))
			conj = append(conj, cf...)
			conj = append(conj, cg...)
			out = append(out, conj)
		}
	}
	return out
}

// Or returns the disjunction of two DNF formulas.
func (f Formula) Or(g Formula) Formula {
	out := make(Formula, 0, len(f)+len(g))
	out = append(out, f...)
	out = append(out, g...)
	return out
}

// IsFalse reports whether the formula is syntactically the empty
// disjunction. Use Satisfiable for the semantic test.
func (f Formula) IsFalse() bool { return len(f) == 0 }

// Eval evaluates the formula under the valuation.
func (f Formula) Eval(val map[string]float64) (bool, error) {
	for _, c := range f {
		ok, err := c.Eval(val)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Vars returns the sorted, de-duplicated variables of the formula.
func (f Formula) Vars() []string {
	var vs []string
	for _, c := range f {
		vs = c.Vars(vs)
	}
	sort.Strings(vs)
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || vs[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// String renders the DNF with "or" separators between parenthesized
// conjunctions; False renders as "false".
func (f Formula) String() string {
	if len(f) == 0 {
		return "false"
	}
	parts := make([]string, len(f))
	for i, c := range f {
		if len(f) > 1 && len(c) > 1 {
			parts[i] = "(" + c.String() + ")"
		} else {
			parts[i] = c.String()
		}
	}
	return strings.Join(parts, " or ")
}

// Satisfiable reports whether some valuation over the dense order
// satisfies the formula. Each disjunct is checked with the point-algebra
// closure solver; a formula is satisfiable iff some disjunct is.
func (f Formula) Satisfiable() bool {
	for _, c := range f {
		if conjSatisfiable(c) {
			return true
		}
	}
	return false
}

// Entails reports whether f ⇒ g: every valuation satisfying f satisfies g.
// f ⇒ g iff for every disjunct cf of f, cf ∧ ¬g is unsatisfiable. Negating
// the DNF g yields a CNF whose distribution can blow up, so Entails first
// tries the exact single-variable interval route and falls back to the
// general procedure only for multi-variable formulas.
func (f Formula) Entails(g Formula) bool {
	if !memoEnabled.Load() {
		return f.entailsUncached(g)
	}
	dst := formulaKeyTo(make([]byte, 0, 96), f)
	dst = append(dst, '\x02')
	key := string(formulaKeyTo(dst, g))
	if v, ok := entailMemo.get(key, nil); ok {
		return v
	}
	v := f.entailsUncached(g)
	entailMemo.put(key, v)
	return v
}

func (f Formula) entailsUncached(g Formula) bool {
	if fg, ok := f.singleVar(); ok {
		if gg, ok2 := g.singleVarCompatible(fg); ok2 {
			fi, err1 := f.ToInterval(fg)
			gi, err2 := g.ToInterval(gg)
			if err1 == nil && err2 == nil {
				return gi.ContainsGen(fi)
			}
		}
	}
	for _, cf := range f {
		if !conjSatisfiable(cf) {
			continue // this disjunct contributes no valuations
		}
		if !conjEntails(cf, g) {
			return false
		}
	}
	return true
}

// Equivalent reports mutual entailment.
func (f Formula) Equivalent(g Formula) bool {
	return f.Entails(g) && g.Entails(f)
}

// singleVar reports the unique variable of the formula, if it has exactly
// one.
func (f Formula) singleVar() (string, bool) {
	vs := f.Vars()
	if len(vs) == 1 {
		return vs[0], true
	}
	return "", false
}

// singleVarCompatible reports the variable to use for interval conversion
// of g when checking entailment against a formula over variable v: g must
// be ground (no variables — compared via the same axis) or use exactly v.
func (g Formula) singleVarCompatible(v string) (string, bool) {
	vs := g.Vars()
	switch {
	case len(vs) == 0:
		return v, true
	case len(vs) == 1 && vs[0] == v:
		return v, true
	default:
		return "", false
	}
}

// --- Single-variable (temporal) formulas ----------------------------------

// atomToSpans converts an atom over variable v (and constants) to the
// set of points of v satisfying it.
func atomToSpans(a Atom, v string) ([]Span, error) {
	type side struct {
		isVar bool
		c     float64
	}
	l := side{isVar: a.Left.IsVar(), c: a.Left.Const}
	r := side{isVar: a.Right.IsVar(), c: a.Right.Const}
	if l.isVar && a.Left.Var != v {
		return nil, fmt.Errorf("constraint: atom %v uses variable %q, want %q", a, a.Left.Var, v)
	}
	if r.isVar && a.Right.Var != v {
		return nil, fmt.Errorf("constraint: atom %v uses variable %q, want %q", a, a.Right.Var, v)
	}
	op := a.Op
	switch {
	case l.isVar && r.isVar: // v op v
		if op.Holds(0, 0) { // reflexive ops are valid
			return []Span{full()}, nil
		}
		return nil, nil // v < v etc.: unsatisfiable
	case !l.isVar && !r.isVar: // ground comparison
		if op.Holds(l.c, r.c) {
			return []Span{full()}, nil
		}
		return nil, nil
	case !l.isVar: // c op v  ⇔  v flip(op) c
		op = op.Flip()
		l, r = r, l
	}
	c := r.c
	switch op {
	case Lt:
		return []Span{below(c)}, nil
	case Le:
		return []Span{atMost(c)}, nil
	case Eq:
		return []Span{point(c)}, nil
	case Ne:
		return []Span{below(c), above(c)}, nil
	case Ge:
		return []Span{atLeast(c)}, nil
	default: // Gt
		return []Span{above(c)}, nil
	}
}

// ToInterval converts a formula whose only variable is v into the
// generalized interval of values of v satisfying it. Ground atoms are
// evaluated; atoms over other variables are an error.
func (f Formula) ToInterval(v string) (Generalized, error) {
	result := emptyGen()
	for _, conj := range f {
		g := newGen(full())
		for _, a := range conj {
			spans, err := atomToSpans(a, v)
			if err != nil {
				return Generalized{}, err
			}
			g = g.Intersect(newGen(spans...))
			if g.IsEmpty() {
				break
			}
		}
		result = result.Union(g)
	}
	return result, nil
}

// FromInterval builds the canonical single-variable formula over v whose
// solutions are exactly the generalized interval g: a disjunct per span.
func FromInterval(v string, g Generalized) Formula {
	if g.IsEmpty() {
		return False()
	}
	var f Formula
	for _, s := range g.Spans() {
		var conj Conj
		switch {
		case s.IsPoint():
			conj = Conj{VarCmp(v, Eq, s.Lo)}
		default:
			if !math.IsInf(s.Lo, -1) {
				op := Ge
				if s.LoOpen {
					op = Gt
				}
				conj = append(conj, VarCmp(v, op, s.Lo))
			}
			if !math.IsInf(s.Hi, 1) {
				op := Le
				if s.HiOpen {
					op = Lt
				}
				conj = append(conj, VarCmp(v, op, s.Hi))
			}
		}
		f = append(f, conj)
	}
	return f
}

// Simplify returns an equivalent formula in canonical form. Exact for
// single-variable formulas (via the interval representation); for
// multi-variable formulas it drops unsatisfiable disjuncts and returns the
// rest unchanged.
func (f Formula) Simplify() Formula {
	if v, ok := f.singleVar(); ok {
		if g, err := f.ToInterval(v); err == nil {
			return FromInterval(v, g)
		}
	}
	var out Formula
	for _, c := range f {
		if conjSatisfiable(c) {
			out = append(out, c)
		}
	}
	return out
}
