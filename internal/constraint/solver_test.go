package constraint

import "testing"

func conj(atoms ...Atom) Conj { return Conj(atoms) }

func TestMultiVarSatisfiability(t *testing.T) {
	x, y, z := V("x"), V("y"), V("z")
	cases := []struct {
		name string
		c    Conj
		want bool
	}{
		{"empty", conj(), true},
		{"chain", conj(NewAtom(x, Lt, y), NewAtom(y, Lt, z)), true},
		{"cycle strict", conj(NewAtom(x, Lt, y), NewAtom(y, Lt, x)), false},
		{"cycle le ok", conj(NewAtom(x, Le, y), NewAtom(y, Le, x)), true}, // x = y
		{"le cycle with ne", conj(NewAtom(x, Le, y), NewAtom(y, Le, x), NewAtom(x, Ne, y)), false},
		{"eq and ne", conj(NewAtom(x, Eq, y), NewAtom(x, Ne, y)), false},
		{"eq transitive strict", conj(NewAtom(x, Eq, y), NewAtom(y, Eq, z), NewAtom(x, Lt, z)), false},
		{"eq transitive le", conj(NewAtom(x, Eq, y), NewAtom(y, Eq, z), NewAtom(x, Le, z)), true},
		{"ne alone", conj(NewAtom(x, Ne, y)), true},
		{"squeeze between constants", conj(VarCmp("x", Gt, 0), VarCmp("x", Lt, 1)), true},
		{"squeeze impossible", conj(VarCmp("x", Gt, 1), VarCmp("x", Lt, 0)), false},
		{"pinned to two constants", conj(VarCmp("x", Eq, 1), VarCmp("x", Eq, 2)), false},
		{"pinned to one constant twice", conj(VarCmp("x", Eq, 1), VarCmp("x", Eq, 1)), true},
		{"const chain forces order", conj(
			VarCmp("x", Le, 1), NewAtom(C(2), Le, V("x"))), false},
		{"through constants", conj(
			VarCmp("x", Lt, 5), NewAtom(C(3), Lt, V("y")), NewAtom(y, Lt, x)), true},
		{"x between y twice", conj(NewAtom(x, Le, y), NewAtom(y, Le, x), VarCmp("x", Eq, 7)), true},
		{"ground contradiction", conj(NewAtom(C(1), Gt, C(2))), false},
		{"ground fine", conj(NewAtom(C(1), Lt, C(2))), true},
		{"reflexive eq", conj(NewAtom(x, Eq, x)), true},
		{"reflexive lt", conj(NewAtom(x, Lt, x)), false},
		{"reflexive ne", conj(NewAtom(x, Ne, x)), false},
		{"long cycle one strict", conj(
			NewAtom(x, Le, y), NewAtom(y, Le, z), NewAtom(z, Lt, x)), false},
		{"diamond", conj(
			NewAtom(x, Lt, y), NewAtom(x, Lt, z), NewAtom(y, Lt, V("w")), NewAtom(z, Lt, V("w"))), true},
	}
	for _, tc := range cases {
		if got := conjSatisfiable(tc.c); got != tc.want {
			t.Errorf("%s: satisfiable(%v) = %v, want %v", tc.name, tc.c, got, tc.want)
		}
	}
}

func TestMultiVarEntailment(t *testing.T) {
	x, y, z := V("x"), V("y"), V("z")
	cases := []struct {
		name string
		f, g Formula
		want bool
	}{
		{"transitivity", Formula{conj(NewAtom(x, Lt, y), NewAtom(y, Lt, z))},
			FromAtom(NewAtom(x, Lt, z)), true},
		{"no converse", FromAtom(NewAtom(x, Lt, z)),
			Formula{conj(NewAtom(x, Lt, y), NewAtom(y, Lt, z))}, false},
		{"lt implies le", FromAtom(NewAtom(x, Lt, y)), FromAtom(NewAtom(x, Le, y)), true},
		{"le not implies lt", FromAtom(NewAtom(x, Le, y)), FromAtom(NewAtom(x, Lt, y)), false},
		{"lt implies ne", FromAtom(NewAtom(x, Lt, y)), FromAtom(NewAtom(x, Ne, y)), true},
		{"eq implies le both", FromAtom(NewAtom(x, Eq, y)),
			Formula{conj(NewAtom(x, Le, y), NewAtom(y, Le, x))}, true},
		{"le both implies eq", Formula{conj(NewAtom(x, Le, y), NewAtom(y, Le, x))},
			FromAtom(NewAtom(x, Eq, y)), true},
		{"disjunctive conclusion", FromAtom(NewAtom(x, Ne, y)),
			FromAtom(NewAtom(x, Lt, y)).Or(FromAtom(NewAtom(x, Gt, y))), true},
		{"totality", True(),
			FromAtom(NewAtom(x, Lt, y)).Or(FromAtom(NewAtom(x, Eq, y))).Or(FromAtom(NewAtom(x, Gt, y))), true},
		{"not one sided", True(), FromAtom(NewAtom(x, Le, y)), false},
		{"unsat antecedent", Formula{conj(NewAtom(x, Lt, y), NewAtom(y, Lt, x))},
			FromAtom(NewAtom(x, Eq, y)), true},
		{"const propagation", Formula{conj(VarCmp("x", Lt, 3), NewAtom(y, Gt, V("x")))},
			FromAtom(VarCmp("y", Gt, 0)), false}, // y > x and x < 3 does not bound y below
		{"const squeeze", Formula{conj(VarCmp("x", Gt, 3), NewAtom(y, Gt, V("x")))},
			FromAtom(VarCmp("y", Gt, 3)), true},
		{"const squeeze strictness", Formula{conj(VarCmp("x", Ge, 3), NewAtom(y, Ge, V("x")))},
			FromAtom(VarCmp("y", Gt, 3)), false},
		{"mixed vars entail ground", Formula{conj(VarCmp("x", Gt, 5), VarCmp("x", Lt, 4))},
			FromAtom(NewAtom(C(1), Lt, C(0))), true}, // unsat antecedent
	}
	for _, tc := range cases {
		if got := tc.f.Entails(tc.g); got != tc.want {
			t.Errorf("%s: (%v) ⇒ (%v) = %v, want %v", tc.name, tc.f, tc.g, got, tc.want)
		}
	}
}

func TestEquivalent(t *testing.T) {
	x, y := V("x"), V("y")
	a := FromAtom(NewAtom(x, Eq, y))
	b := Formula{conj(NewAtom(x, Le, y), NewAtom(y, Le, x))}
	if !a.Equivalent(b) {
		t.Error("x=y should be equivalent to x≤y ∧ y≤x")
	}
	if a.Equivalent(FromAtom(NewAtom(x, Le, y))) {
		t.Error("x=y should not be equivalent to x≤y")
	}
}

func TestEntailmentMatchesTruthTableOnSamples(t *testing.T) {
	// Differential test: check Entails against brute-force evaluation on a
	// grid of valuations. If f ⇒ g, then no grid point may satisfy f ∧ ¬g.
	x, y := V("x"), V("y")
	formulas := []Formula{
		FromAtom(NewAtom(x, Lt, y)),
		FromAtom(NewAtom(x, Le, y)),
		FromAtom(NewAtom(x, Eq, y)),
		FromAtom(NewAtom(x, Ne, y)),
		FromAtom(VarCmp("x", Lt, 2)),
		FromAtom(VarCmp("y", Gt, 1)),
		Formula{conj(NewAtom(x, Lt, y), VarCmp("x", Gt, 0))},
		FromAtom(NewAtom(x, Lt, y)).Or(FromAtom(NewAtom(y, Lt, x))),
		True(),
		False(),
	}
	grid := []float64{-1, 0, 0.5, 1, 1.5, 2, 3}
	for _, f := range formulas {
		for _, g := range formulas {
			entails := f.Entails(g)
			if !entails {
				continue
			}
			for _, xv := range grid {
				for _, yv := range grid {
					val := map[string]float64{"x": xv, "y": yv}
					fOK, _ := f.Eval(val)
					gOK, _ := g.Eval(val)
					if fOK && !gOK {
						t.Errorf("(%v) ⇒ (%v) claimed but x=%v,y=%v is a countermodel",
							f, g, xv, yv)
					}
				}
			}
		}
	}
}
