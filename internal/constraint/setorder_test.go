package constraint

import "testing"

func TestSetTermBasics(t *testing.T) {
	lit := SetLit("b", "a", "b")
	if got := lit.String(); got != "{a, b}" {
		t.Errorf("SetLit dedup/sort: %q", got)
	}
	if SetVar("X").String() != "X" {
		t.Error("SetVar String")
	}
	if got := Member("o1", "E").String(); got != "{o1} ⊆ E" {
		t.Errorf("Member String = %q", got)
	}
}

func TestSetConjEval(t *testing.T) {
	c := SetConj{
		Member("a", "X"),
		Subset(SetVar("X"), SetVar("Y")),
		Subset(SetVar("Y"), SetLit("a", "b", "c")),
	}
	ok, err := c.Eval(map[string][]string{"X": {"a"}, "Y": {"a", "b"}})
	if err != nil || !ok {
		t.Errorf("Eval = %v, %v", ok, err)
	}
	ok, err = c.Eval(map[string][]string{"X": {"a", "z"}, "Y": {"a", "z"}})
	if err != nil || ok {
		t.Errorf("Eval with escape = %v, %v; want false", ok, err)
	}
	if _, err := c.Eval(map[string][]string{"X": {"a"}}); err == nil {
		t.Error("expected unbound set variable error")
	}
}

func TestSetSatisfiability(t *testing.T) {
	cases := []struct {
		name string
		c    SetConj
		want bool
	}{
		{"empty", SetConj{}, true},
		{"member", SetConj{Member("a", "X")}, true},
		{"member vs upper", SetConj{Member("a", "X"), Subset(SetVar("X"), SetLit("b"))}, false},
		{"member within upper", SetConj{Member("a", "X"), Subset(SetVar("X"), SetLit("a", "b"))}, true},
		{"lower via chain", SetConj{
			Member("a", "X"), Subset(SetVar("X"), SetVar("Y")),
			Subset(SetVar("Y"), SetLit("b", "c"))}, false},
		{"upper flows backward", SetConj{
			Subset(SetVar("X"), SetVar("Y")), Subset(SetVar("Y"), SetLit("a")),
			Member("b", "X")}, false},
		{"consistent chain", SetConj{
			Subset(SetLit("a"), SetVar("X")), Subset(SetVar("X"), SetVar("Y")),
			Subset(SetVar("Y"), SetLit("a", "b"))}, true},
		{"ground ok", SetConj{Subset(SetLit("a"), SetLit("a", "b"))}, true},
		{"ground bad", SetConj{Subset(SetLit("a", "z"), SetLit("a", "b"))}, false},
		{"two uppers intersect", SetConj{
			Subset(SetVar("X"), SetLit("a", "b")), Subset(SetVar("X"), SetLit("b", "c")),
			Member("b", "X")}, true},
		{"two uppers empty meet", SetConj{
			Subset(SetVar("X"), SetLit("a")), Subset(SetVar("X"), SetLit("c")),
			Member("a", "X")}, false},
		{"cycle equality", SetConj{
			Subset(SetVar("X"), SetVar("Y")), Subset(SetVar("Y"), SetVar("X")),
			Member("a", "X"), Subset(SetVar("Y"), SetLit("a", "b"))}, true},
		{"cycle equality conflict", SetConj{
			Subset(SetVar("X"), SetVar("Y")), Subset(SetVar("Y"), SetVar("X")),
			Member("a", "X"), Subset(SetVar("Y"), SetLit("b"))}, false},
	}
	for _, tc := range cases {
		if got := tc.c.Satisfiable(); got != tc.want {
			t.Errorf("%s: Satisfiable(%v) = %v, want %v", tc.name, tc.c, got, tc.want)
		}
	}
}

func TestSetEntailment(t *testing.T) {
	cases := []struct {
		name string
		f, g SetConj
		want bool
	}{
		{"reflexive", SetConj{Member("a", "X")}, SetConj{Member("a", "X")}, true},
		{"weaken member", SetConj{Subset(SetLit("a", "b"), SetVar("X"))},
			SetConj{Member("a", "X")}, true},
		{"no invent member", SetConj{Member("a", "X")}, SetConj{Member("b", "X")}, false},
		{"member through chain", SetConj{Member("a", "X"), Subset(SetVar("X"), SetVar("Y"))},
			SetConj{Member("a", "Y")}, true},
		{"subset transitive", SetConj{
			Subset(SetVar("X"), SetVar("Y")), Subset(SetVar("Y"), SetVar("Z"))},
			SetConj{Subset(SetVar("X"), SetVar("Z"))}, true},
		{"subset not symmetric", SetConj{Subset(SetVar("X"), SetVar("Y"))},
			SetConj{Subset(SetVar("Y"), SetVar("X"))}, false},
		{"upper entails upper", SetConj{Subset(SetVar("X"), SetLit("a"))},
			SetConj{Subset(SetVar("X"), SetLit("a", "b"))}, true},
		{"upper too generous", SetConj{Subset(SetVar("X"), SetLit("a", "b"))},
			SetConj{Subset(SetVar("X"), SetLit("a"))}, false},
		{"no upper no bound", SetConj{Member("a", "X")},
			SetConj{Subset(SetVar("X"), SetLit("a"))}, false},
		{"unsat antecedent", SetConj{Member("a", "X"), Subset(SetVar("X"), SetLit("b"))},
			SetConj{Member("z", "Q")}, true},
		{"subset via bounds", SetConj{
			Subset(SetVar("X"), SetLit("a")), Subset(SetLit("a"), SetVar("Y"))},
			SetConj{Subset(SetVar("X"), SetVar("Y"))}, true},
		{"ground entailed", SetConj{}, SetConj{Subset(SetLit("a"), SetLit("a", "b"))}, true},
		{"ground not entailed", SetConj{}, SetConj{Subset(SetLit("z"), SetLit("a"))}, false},
		{"self subset", SetConj{}, SetConj{Subset(SetVar("X"), SetVar("X"))}, true},
		{"fresh var upper unknown", SetConj{}, SetConj{Subset(SetVar("Q"), SetLit("a"))}, false},
		{"fresh var lower empty ok", SetConj{}, SetConj{Subset(SetLit(), SetVar("Q"))}, true},
	}
	for _, tc := range cases {
		if got := tc.f.Entails(tc.g); got != tc.want {
			t.Errorf("%s: (%v) ⇒ (%v) = %v, want %v", tc.name, tc.f, tc.g, got, tc.want)
		}
	}
}

func TestSetEntailmentSoundAgainstEnumeration(t *testing.T) {
	// Differential test over a tiny universe {a, b}: enumerate all
	// assignments of subsets to X and Y; whenever Entails claims f ⇒ g,
	// no assignment may satisfy f but not g.
	universe := [][]string{{}, {"a"}, {"b"}, {"a", "b"}}
	atoms := []SetAtom{
		Member("a", "X"),
		Member("b", "Y"),
		Subset(SetVar("X"), SetVar("Y")),
		Subset(SetVar("Y"), SetVar("X")),
		Subset(SetVar("X"), SetLit("a")),
		Subset(SetVar("Y"), SetLit("a", "b")),
		Subset(SetLit("b"), SetVar("X")),
	}
	var conjs []SetConj
	for i := range atoms {
		conjs = append(conjs, SetConj{atoms[i]})
		for j := i + 1; j < len(atoms); j++ {
			conjs = append(conjs, SetConj{atoms[i], atoms[j]})
		}
	}
	for _, f := range conjs {
		for _, g := range conjs {
			if !f.Entails(g) {
				continue
			}
			for _, xs := range universe {
				for _, ys := range universe {
					val := map[string][]string{"X": xs, "Y": ys}
					fOK, _ := f.Eval(val)
					gOK, _ := g.Eval(val)
					if fOK && !gOK {
						t.Errorf("(%v) ⇒ (%v) claimed but X=%v Y=%v is a countermodel",
							f, g, xs, ys)
					}
				}
			}
		}
	}
}
