package constraint

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genFormula draws a random single-variable DNF over "t" with small
// integer bounds, so equalities and adjacencies occur often.
func genFormula(r *rand.Rand) Formula {
	nDisj := 1 + r.Intn(3)
	f := make(Formula, 0, nDisj)
	ops := []Op{Lt, Le, Eq, Ne, Ge, Gt}
	for i := 0; i < nDisj; i++ {
		nAtoms := r.Intn(3) + 1
		c := make(Conj, 0, nAtoms)
		for j := 0; j < nAtoms; j++ {
			c = append(c, VarCmp("t", ops[r.Intn(len(ops))], float64(r.Intn(11)-5)))
		}
		f = append(f, c)
	}
	return f
}

type quickFormula struct{ F Formula }

func (quickFormula) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickFormula{F: genFormula(r)})
}

var cfg = &quick.Config{MaxCount: 300}

func TestPropEntailmentReflexiveTransitive(t *testing.T) {
	f := func(a, b, c quickFormula) bool {
		if !a.F.Entails(a.F) {
			return false
		}
		if a.F.Entails(b.F) && b.F.Entails(c.F) && !a.F.Entails(c.F) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropSimplifyPreservesSemantics(t *testing.T) {
	f := func(a quickFormula) bool {
		s := a.F.Simplify()
		return s.Equivalent(a.F)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropIntervalConversionMatchesEval(t *testing.T) {
	// The interval of solutions and direct evaluation must agree on a
	// sampling grid (half-integers catch open/closed boundary bugs).
	f := func(a quickFormula) bool {
		g, err := a.F.ToInterval("t")
		if err != nil {
			return false
		}
		for p := -6.0; p <= 6; p += 0.5 {
			want, err := a.F.Eval(map[string]float64{"t": p})
			if err != nil {
				return false
			}
			if g.Contains(p) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropAndOrSemantics(t *testing.T) {
	f := func(a, b quickFormula) bool {
		and := a.F.And(b.F)
		or := a.F.Or(b.F)
		for p := -6.0; p <= 6; p += 1 {
			val := map[string]float64{"t": p}
			av, _ := a.F.Eval(val)
			bv, _ := b.F.Eval(val)
			andv, _ := and.Eval(val)
			orv, _ := or.Eval(val)
			if andv != (av && bv) || orv != (av || bv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropSatisfiableIffNonEmptyInterval(t *testing.T) {
	f := func(a quickFormula) bool {
		g, err := a.F.ToInterval("t")
		if err != nil {
			return false
		}
		return a.F.Satisfiable() == !g.IsEmpty()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropEntailmentAgreesWithIntervals(t *testing.T) {
	// For single-variable formulas, Entails must coincide with interval
	// containment — this cross-checks the generic solver path against the
	// exact interval path.
	f := func(a, b quickFormula) bool {
		ga, err1 := a.F.ToInterval("t")
		gb, err2 := b.F.ToInterval("t")
		if err1 != nil || err2 != nil {
			return false
		}
		// Force the generic path by bypassing the single-var shortcut:
		// check each satisfiable disjunct with conjEntails directly.
		generic := true
		for _, cf := range a.F {
			if !conjSatisfiable(cf) {
				continue
			}
			if !conjEntails(cf, b.F) {
				generic = false
				break
			}
		}
		want := gb.ContainsGen(ga)
		return generic == want && a.F.Entails(b.F) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropSetClosureSoundness(t *testing.T) {
	// Random small set-order conjunctions over universe {a,b,c} and
	// variables X,Y: if satisfiable, the closure's lower bounds themselves
	// form a solution whenever every variable has a finite upper bound or
	// none; check that the lower-bound assignment satisfies the conjunction.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		univ := []string{"a", "b", "c"}
		vars := []string{"X", "Y"}
		n := 1 + r.Intn(4)
		var cjs SetConj
		for i := 0; i < n; i++ {
			switch r.Intn(4) {
			case 0:
				cjs = append(cjs, Member(univ[r.Intn(3)], vars[r.Intn(2)]))
			case 1:
				cjs = append(cjs, Subset(SetVar(vars[r.Intn(2)]), SetLit(univ[r.Intn(3)], univ[r.Intn(3)])))
			case 2:
				cjs = append(cjs, Subset(SetLit(univ[r.Intn(3)]), SetVar(vars[r.Intn(2)])))
			default:
				cjs = append(cjs, Subset(SetVar(vars[r.Intn(2)]), SetVar(vars[r.Intn(2)])))
			}
		}
		cl := closeConj(cjs)
		if !cl.sat {
			// Verify genuine unsatisfiability by enumeration over the universe.
			subsets := [][]string{{}, {"a"}, {"b"}, {"c"}, {"a", "b"}, {"a", "c"}, {"b", "c"}, {"a", "b", "c"}}
			for _, xs := range subsets {
				for _, ys := range subsets {
					ok, _ := cjs.Eval(map[string][]string{"X": xs, "Y": ys})
					if ok {
						return false // solver said unsat but a model exists
					}
				}
			}
			return true
		}
		// Build the minimal (lower-bound) assignment and check it.
		val := map[string][]string{"X": nil, "Y": nil}
		for v, b := range cl.vars {
			var elems []string
			for e := range b.lower {
				elems = append(elems, e)
			}
			val[v] = elems
		}
		ok, err := cjs.Eval(val)
		return err == nil && ok
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
