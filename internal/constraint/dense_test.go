package constraint

import (
	"testing"

	"videodb/internal/interval"
)

func TestOpBasics(t *testing.T) {
	cases := []struct {
		op       Op
		str      string
		a, b     float64
		holds    bool
		negHolds bool
	}{
		{Lt, "<", 1, 2, true, false},
		{Le, "<=", 2, 2, true, false},
		{Eq, "=", 2, 2, true, false},
		{Ne, "!=", 1, 2, true, false},
		{Ge, ">=", 2, 2, true, false},
		{Gt, ">", 3, 2, true, false},
	}
	for _, tc := range cases {
		if got := tc.op.String(); got != tc.str {
			t.Errorf("%v.String() = %q, want %q", tc.op, got, tc.str)
		}
		if got := tc.op.Holds(tc.a, tc.b); got != tc.holds {
			t.Errorf("%v.Holds(%v,%v) = %v", tc.op, tc.a, tc.b, got)
		}
		if got := tc.op.Negate().Holds(tc.a, tc.b); got != tc.negHolds {
			t.Errorf("negation of %v on (%v,%v) = %v", tc.op, tc.a, tc.b, got)
		}
		if tc.op.Negate().Negate() != tc.op {
			t.Errorf("%v: double negation not identity", tc.op)
		}
		if tc.op.Flip().Flip() != tc.op {
			t.Errorf("%v: double flip not identity", tc.op)
		}
		// Flip semantics: a op b == b flip(op) a.
		for _, x := range []float64{1, 2, 3} {
			for _, y := range []float64{1, 2, 3} {
				if tc.op.Holds(x, y) != tc.op.Flip().Holds(y, x) {
					t.Errorf("%v: flip semantics broken at (%v,%v)", tc.op, x, y)
				}
			}
		}
	}
}

func TestParseOp(t *testing.T) {
	good := map[string]Op{
		"<": Lt, "<=": Le, "=<": Le, "≤": Le, "=": Eq, "==": Eq,
		"!=": Ne, "<>": Ne, "≠": Ne, ">=": Ge, "=>": Ge, "≥": Ge, ">": Gt,
	}
	for s, want := range good {
		got, err := ParseOp(s)
		if err != nil || got != want {
			t.Errorf("ParseOp(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, bad := range []string{"", "<<", "~", "in"} {
		if _, err := ParseOp(bad); err == nil {
			t.Errorf("ParseOp(%q): expected error", bad)
		}
	}
}

func TestAtomEval(t *testing.T) {
	a := NewAtom(V("x"), Lt, V("y"))
	val := map[string]float64{"x": 1, "y": 2}
	ok, err := a.Eval(val)
	if err != nil || !ok {
		t.Errorf("x < y under {x:1,y:2} = %v, %v", ok, err)
	}
	if _, err := a.Eval(map[string]float64{"x": 1}); err == nil {
		t.Error("expected unbound-variable error")
	}
	g := VarCmp("t", Gt, 10)
	if got := g.String(); got != "t > 10" {
		t.Errorf("String = %q", got)
	}
}

func TestFormulaEvalAndString(t *testing.T) {
	// (t > 0 and t < 10) or t = 42
	f := Between("t", 0, 10).Or(FromAtom(VarCmp("t", Eq, 42)))
	for _, tc := range []struct {
		t    float64
		want bool
	}{{5, true}, {0, false}, {10, false}, {42, true}, {41, false}} {
		got, err := f.Eval(map[string]float64{"t": tc.t})
		if err != nil || got != tc.want {
			t.Errorf("Eval(t=%v) = %v, %v; want %v", tc.t, got, err, tc.want)
		}
	}
	if got := f.String(); got != "(t > 0 and t < 10) or t = 42" {
		t.Errorf("String = %q", got)
	}
	if False().String() != "false" {
		t.Error("False should render as false")
	}
	if True().String() != "true" {
		t.Error("True should render as true")
	}
	if got, err := True().Eval(nil); err != nil || !got {
		t.Errorf("True eval = %v, %v", got, err)
	}
	if got, err := False().Eval(nil); err != nil || got {
		t.Errorf("False eval = %v, %v", got, err)
	}
}

func TestFormulaAndOr(t *testing.T) {
	a := FromAtom(VarCmp("t", Gt, 0))
	b := FromAtom(VarCmp("t", Lt, 10))
	ab := a.And(b)
	if len(ab) != 1 || len(ab[0]) != 2 {
		t.Fatalf("And structure: %v", ab)
	}
	// And distributes over disjuncts.
	c := a.Or(b).And(FromAtom(VarCmp("t", Ne, 5)))
	if len(c) != 2 {
		t.Fatalf("And over Or structure: %v", c)
	}
	// x.And(False) is false.
	if !a.And(False()).IsFalse() {
		t.Error("And with False should be False")
	}
}

func TestToInterval(t *testing.T) {
	cases := []struct {
		name string
		f    Formula
		want interval.Generalized
	}{
		{"between", Between("t", 0, 10), interval.New(interval.Open(0, 10))},
		{"le-ge", Formula{Conj{VarCmp("t", Ge, 0), VarCmp("t", Le, 10)}},
			interval.FromPairs(0, 10)},
		{"eq", FromAtom(VarCmp("t", Eq, 5)), interval.New(interval.Point(5))},
		{"ne", FromAtom(VarCmp("t", Ne, 5)),
			interval.New(interval.Below(5), interval.Above(5))},
		{"disjunction", Between("t", 0, 10).Or(Between("t", 20, 30)),
			interval.New(interval.Open(0, 10), interval.Open(20, 30))},
		{"contradiction", Formula{Conj{VarCmp("t", Lt, 0), VarCmp("t", Gt, 10)}},
			interval.Empty()},
		{"false", False(), interval.Empty()},
		{"true", True(), interval.New(interval.Full())},
		{"flipped const side", FromAtom(NewAtom(C(3), Lt, V("t"))),
			interval.New(interval.Above(3))},
		{"ground true atom", FromAtom(NewAtom(C(1), Lt, C(2))),
			interval.New(interval.Full())},
		{"ground false atom", FromAtom(NewAtom(C(2), Lt, C(1))),
			interval.Empty()},
		{"reflexive var", FromAtom(NewAtom(V("t"), Le, V("t"))),
			interval.New(interval.Full())},
		{"irreflexive var", FromAtom(NewAtom(V("t"), Lt, V("t"))),
			interval.Empty()},
	}
	for _, tc := range cases {
		got, err := tc.f.ToInterval("t")
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if !got.Equal(tc.want) {
			t.Errorf("%s: ToInterval = %v, want %v", tc.name, got, tc.want)
		}
	}
	if _, err := FromAtom(VarCmp("u", Lt, 3)).ToInterval("t"); err == nil {
		t.Error("expected error for foreign variable")
	}
}

func TestFromIntervalRoundTrip(t *testing.T) {
	cases := []interval.Generalized{
		interval.Empty(),
		interval.FromPairs(0, 10),
		interval.New(interval.Open(0, 10), interval.Point(15), interval.OpenClosed(20, 30)),
		interval.New(interval.Below(0), interval.Above(100)),
		interval.New(interval.Full()),
	}
	for _, g := range cases {
		f := FromInterval("t", g)
		back, err := f.ToInterval("t")
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if !back.Equal(g) {
			t.Errorf("round trip %v -> %q -> %v", g, f, back)
		}
	}
}

func TestSatisfiableSingleVar(t *testing.T) {
	cases := []struct {
		f    Formula
		want bool
	}{
		{Between("t", 0, 10), true},
		{Formula{Conj{VarCmp("t", Lt, 0), VarCmp("t", Gt, 10)}}, false},
		{Formula{Conj{VarCmp("t", Lt, 0), VarCmp("t", Gt, 10)}}.Or(Between("t", 1, 2)), true},
		{False(), false},
		{True(), true},
		{FromAtom(VarCmp("t", Eq, 5)).And(FromAtom(VarCmp("t", Ne, 5))), false},
		{Formula{Conj{VarCmp("t", Le, 5), VarCmp("t", Ge, 5)}}, true}, // t = 5
		{Formula{Conj{VarCmp("t", Lt, 5), VarCmp("t", Ge, 5)}}, false},
	}
	for _, tc := range cases {
		if got := tc.f.Satisfiable(); got != tc.want {
			t.Errorf("Satisfiable(%v) = %v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestEntailsSingleVar(t *testing.T) {
	// The paper's query pattern: G.duration ⇒ (t > a ∧ t < b).
	dur := Between("t", 2, 8)
	cases := []struct {
		f, g Formula
		want bool
	}{
		{dur, Between("t", 0, 10), true},
		{dur, Between("t", 3, 10), false},
		{dur, dur, true},
		{Between("t", 0, 10).Or(Between("t", 20, 30)), Between("t", 0, 30), true},
		{Between("t", 0, 30), Between("t", 0, 10).Or(Between("t", 20, 30)), false},
		{False(), dur, true},  // false entails everything
		{dur, False(), false}, // nothing but false entails false
		{dur, True(), true},
		{True(), dur, false},
		{FromAtom(VarCmp("t", Eq, 5)), Between("t", 0, 10), true},
		{FromAtom(VarCmp("t", Ne, 5)), Between("t", 0, 10), false},
		// Point vs open bound subtleties.
		{Formula{Conj{VarCmp("t", Ge, 0), VarCmp("t", Le, 10)}}, Between("t", 0, 10), false},
		{Between("t", 0, 10), Formula{Conj{VarCmp("t", Ge, 0), VarCmp("t", Le, 10)}}, true},
	}
	for _, tc := range cases {
		if got := tc.f.Entails(tc.g); got != tc.want {
			t.Errorf("(%v) ⇒ (%v) = %v, want %v", tc.f, tc.g, got, tc.want)
		}
	}
}

func TestSimplify(t *testing.T) {
	// Overlapping disjuncts collapse via the interval canonical form.
	f := Between("t", 0, 10).Or(Between("t", 5, 15)).Or(Between("t", -3, 1))
	s := f.Simplify()
	if len(s) != 1 {
		t.Errorf("Simplify structure = %v", s)
	}
	if !s.Equivalent(Between("t", -3, 15)) {
		t.Errorf("Simplify = %v, want equivalent of (-3,15)", s)
	}
	// Unsatisfiable disjuncts drop in the multi-variable path too.
	mv := Formula{
		Conj{NewAtom(V("x"), Lt, V("y")), NewAtom(V("y"), Lt, V("x"))}, // unsat
		Conj{NewAtom(V("x"), Lt, V("y"))},
	}
	if got := mv.Simplify(); len(got) != 1 {
		t.Errorf("multi-var Simplify = %v", got)
	}
	if got := False().Simplify(); !got.IsFalse() {
		t.Errorf("Simplify(false) = %v", got)
	}
}

func TestVars(t *testing.T) {
	f := Formula{
		Conj{NewAtom(V("x"), Lt, V("y")), VarCmp("t", Gt, 0)},
		Conj{NewAtom(V("y"), Le, C(3))},
	}
	got := f.Vars()
	want := []string{"t", "x", "y"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestBetweenAndDurationHelpers(t *testing.T) {
	g, err := IntervalOf(Between("t", 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(interval.New(interval.Open(1, 2))) {
		t.Errorf("IntervalOf = %v", g)
	}
	f := DurationFormula(interval.FromPairs(0, 5))
	if !f.Equivalent(Formula{Conj{VarCmp("t", Ge, 0), VarCmp("t", Le, 5)}}) {
		t.Errorf("DurationFormula = %v", f)
	}
}
