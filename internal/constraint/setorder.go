package constraint

import (
	"fmt"
	"sort"
	"strings"
)

// Set-order constraints (Definition 3 of the paper): over variables X̃, Ỹ
// ranging over finite sets of constants of some domain D,
//
//	c ∈ X̃        (element membership; derived form of {c} ⊆ X̃)
//	X̃ ⊆ s        (upper bound by a constant set)
//	s ⊆ X̃        (lower bound by a constant set)
//	X̃ ⊆ Ỹ        (inclusion between variables)
//
// with no set functions (∪, ∩). Satisfiability and entailment of
// conjunctions are decidable in polynomial time by the bound-propagation
// (quantifier elimination) method of Srivastava, Ramakrishnan and Revesz:
// propagate element lower bounds forward and finite upper bounds backward
// along the ⊆-graph until fixpoint, then compare bounds.

// SetTerm identifies a set variable or a literal constant set.
type SetTerm struct {
	Var string   // non-empty for a variable
	Lit []string // sorted constant set for a literal
}

// SetVar returns a set-variable term.
func SetVar(name string) SetTerm { return SetTerm{Var: name} }

// SetLit returns a constant-set term (the input is copied and sorted).
func SetLit(elems ...string) SetTerm {
	s := append([]string(nil), elems...)
	sort.Strings(s)
	out := s[:0]
	for i, e := range s {
		if i == 0 || s[i-1] != e {
			out = append(out, e)
		}
	}
	return SetTerm{Lit: out}
}

// IsVar reports whether the term is a variable.
func (t SetTerm) IsVar() bool { return t.Var != "" }

// String renders the term; literals render as {a, b}.
func (t SetTerm) String() string {
	if t.IsVar() {
		return t.Var
	}
	return "{" + strings.Join(t.Lit, ", ") + "}"
}

// SetAtom is a primitive set-order constraint Left ⊆ Right. Membership
// c ∈ X̃ is expressed as {c} ⊆ X̃ (its derived form in the paper).
type SetAtom struct {
	Left, Right SetTerm
}

// Subset builds the atom left ⊆ right.
func Subset(left, right SetTerm) SetAtom { return SetAtom{Left: left, Right: right} }

// Member builds the derived-form atom c ∈ X̃, i.e. {c} ⊆ X̃.
func Member(c string, x string) SetAtom {
	return SetAtom{Left: SetLit(c), Right: SetVar(x)}
}

// String renders the atom with the ⊆ symbol.
func (a SetAtom) String() string { return a.Left.String() + " ⊆ " + a.Right.String() }

// SetConj is a conjunction of set-order atoms.
type SetConj []SetAtom

// String renders the conjunction.
func (c SetConj) String() string {
	if len(c) == 0 {
		return "true"
	}
	parts := make([]string, len(c))
	for i, a := range c {
		parts[i] = a.String()
	}
	return strings.Join(parts, " and ")
}

// Eval evaluates the conjunction under a valuation of set variables.
func (c SetConj) Eval(val map[string][]string) (bool, error) {
	for _, a := range c {
		l, err := a.Left.value(val)
		if err != nil {
			return false, err
		}
		r, err := a.Right.value(val)
		if err != nil {
			return false, err
		}
		if !subsetOf(l, r) {
			return false, nil
		}
	}
	return true, nil
}

func (t SetTerm) value(val map[string][]string) (map[string]bool, error) {
	set := make(map[string]bool)
	if t.IsVar() {
		elems, ok := val[t.Var]
		if !ok {
			return nil, fmt.Errorf("constraint: unbound set variable %q", t.Var)
		}
		for _, e := range elems {
			set[e] = true
		}
		return set, nil
	}
	for _, e := range t.Lit {
		set[e] = true
	}
	return set, nil
}

func subsetOf(a, b map[string]bool) bool {
	for e := range a {
		if !b[e] {
			return false
		}
	}
	return true
}

// bounds is the closure state for one set variable: a required lower bound
// and an optional finite upper bound (nil upper = unrestricted ⊤).
type bounds struct {
	lower map[string]bool
	upper map[string]bool // nil means unrestricted
}

// setClosure is the normal form computed by bound propagation.
type setClosure struct {
	vars map[string]*bounds
	// succ[x] lists variables y with an explicit x ⊆ y path; the relation
	// stored here is the reflexive-transitive closure of the ⊆ edges.
	succ map[string]map[string]bool
	sat  bool
}

// closeConj computes the bound-propagation closure of the conjunction,
// consulting the solver memo first. Cached closures are immutable after
// construction: Satisfiable and entailsAtom only read them.
func closeConj(c SetConj) *setClosure {
	cl, _ := closeConjB(c, nil)
	return cl
}

// closeConjB is closeConj under a step budget: the closure charges one
// step per atom up front and one per propagation sweep, so the (input-
// polynomial but potentially large) bound-propagation fixpoint respects
// a caller's budget and cancellation check.
func closeConjB(c SetConj, b *Budget) (*setClosure, error) {
	if !memoEnabled.Load() {
		return closeConjUncached(c, b)
	}
	key := setConjKey(c)
	if cl, ok := closureMemo.get(key, b); ok {
		return cl, nil
	}
	cl, err := closeConjUncached(c, b)
	if err != nil {
		return nil, err // incomplete closure: never cache
	}
	closureMemo.put(key, cl)
	return cl, nil
}

func closeConjUncached(c SetConj, budget *Budget) (*setClosure, error) {
	if err := budget.Spend(int64(len(c)) + 1); err != nil {
		return nil, err
	}
	cl := &setClosure{
		vars: make(map[string]*bounds),
		succ: make(map[string]map[string]bool),
		sat:  true,
	}
	b := func(v string) *bounds {
		if bb, ok := cl.vars[v]; ok {
			return bb
		}
		bb := &bounds{lower: make(map[string]bool)}
		cl.vars[v] = bb
		if _, ok := cl.succ[v]; !ok {
			cl.succ[v] = map[string]bool{v: true}
		}
		return bb
	}
	type inclusion struct{ from, to string }
	var incls []inclusion

	for _, a := range c {
		switch {
		case a.Left.IsVar() && a.Right.IsVar():
			b(a.Left.Var)
			b(a.Right.Var)
			incls = append(incls, inclusion{a.Left.Var, a.Right.Var})
		case !a.Left.IsVar() && a.Right.IsVar(): // s ⊆ X: lower bound
			bb := b(a.Right.Var)
			for _, e := range a.Left.Lit {
				bb.lower[e] = true
			}
		case a.Left.IsVar() && !a.Right.IsVar(): // X ⊆ s: upper bound
			bb := b(a.Left.Var)
			up := make(map[string]bool, len(a.Right.Lit))
			for _, e := range a.Right.Lit {
				up[e] = true
			}
			bb.upper = intersectUpper(bb.upper, up)
		default: // s ⊆ s': ground, decide now
			ls, rs := SetLit(a.Left.Lit...), SetLit(a.Right.Lit...)
			lm, _ := ls.value(nil)
			rm, _ := rs.value(nil)
			if !subsetOf(lm, rm) {
				cl.sat = false
			}
		}
	}

	// Transitive closure of the ⊆ edges (small n in practice).
	changedSucc := true
	for changedSucc {
		if err := budget.Spend(1); err != nil {
			return nil, err
		}
		changedSucc = false
		for _, e := range incls {
			for t := range cl.succ[e.to] {
				if !cl.succ[e.from][t] {
					cl.succ[e.from][t] = true
					changedSucc = true
				}
			}
		}
	}

	// Propagate bounds to fixpoint: lower bounds flow forward along ⊆,
	// finite upper bounds flow backward.
	changed := true
	for changed {
		if err := budget.Spend(1); err != nil {
			return nil, err
		}
		changed = false
		for _, e := range incls {
			from, to := cl.vars[e.from], cl.vars[e.to]
			for el := range from.lower {
				if !to.lower[el] {
					to.lower[el] = true
					changed = true
				}
			}
			if to.upper != nil {
				if from.upper == nil {
					from.upper = copySet(to.upper)
					changed = true
				} else {
					for el := range from.upper {
						if !to.upper[el] {
							delete(from.upper, el)
							changed = true
						}
					}
				}
			}
		}
	}

	for _, bb := range cl.vars {
		if bb.upper != nil && !subsetOf(bb.lower, bb.upper) {
			cl.sat = false
		}
	}
	return cl, nil
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func intersectUpper(a, b map[string]bool) map[string]bool {
	if a == nil {
		return copySet(b)
	}
	out := make(map[string]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// Satisfiable reports whether some assignment of finite sets satisfies
// the conjunction.
func (c SetConj) Satisfiable() bool { return closeConj(c).sat }

// Entails reports whether every solution of c also satisfies g.
func (c SetConj) Entails(g SetConj) bool {
	cl := closeConj(c)
	if !cl.sat {
		return true // false entails everything
	}
	for _, a := range g {
		if !cl.entailsAtom(a) {
			return false
		}
	}
	return true
}

func (cl *setClosure) entailsAtom(a SetAtom) bool {
	switch {
	case a.Left.IsVar() && a.Right.IsVar():
		x, y := a.Left.Var, a.Right.Var
		if x == y {
			return true
		}
		if cl.succ[x][y] {
			return true
		}
		// X ⊆ Y also holds in all solutions when every allowed element of X
		// is required in Y.
		bx, okx := cl.vars[x]
		by, oky := cl.vars[y]
		if okx && oky && bx.upper != nil && subsetOf(bx.upper, by.lower) {
			return true
		}
		return false
	case !a.Left.IsVar() && a.Right.IsVar(): // s ⊆ X: every element required
		bx, ok := cl.vars[a.Right.Var]
		if !ok {
			return len(a.Left.Lit) == 0
		}
		for _, e := range a.Left.Lit {
			if !bx.lower[e] {
				return false
			}
		}
		return true
	case a.Left.IsVar() && !a.Right.IsVar(): // X ⊆ s: upper bound within s
		bx, ok := cl.vars[a.Left.Var]
		if !ok || bx.upper == nil {
			return false // X unrestricted above: some solution escapes s
		}
		allowed := make(map[string]bool, len(a.Right.Lit))
		for _, e := range a.Right.Lit {
			allowed[e] = true
		}
		return subsetOf(bx.upper, allowed)
	default: // ground
		lm, _ := a.Left.value(nil)
		rm, _ := a.Right.value(nil)
		return subsetOf(lm, rm)
	}
}
