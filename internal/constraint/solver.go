package constraint

import "sort"

// This file implements an exact satisfiability and entailment procedure
// for conjunctions of dense-order atoms over arbitrarily many variables
// (the "point algebra" fragment used in rule bodies).
//
// Algorithm (classical, van Beek style): build a graph whose nodes are
// variables and the distinct constants of the conjunction.
//
//   - x = y   adds edges x ≤ y and y ≤ x;
//   - x ≤ y   adds edge x ≤ y;
//   - x < y   adds edge x ≤ y marked strict;
//   - x ≠ y   is recorded as a disequality pair;
//   - consecutive distinct constants c1 < c2 add a strict edge c1 → c2.
//
// The conjunction is satisfiable over a dense linear order iff, after
// collapsing strongly connected components of the ≤-graph (whose members
// are all forced equal):
//
//   1. no strict edge joins two nodes of the same component;
//   2. no disequality pair lies within one component;
//   3. no component contains two distinct constants.
//
// Density of the order guarantees that any component DAG satisfying these
// conditions is realizable (assign strictly increasing reals along a
// topological order, squeezing between pinned constants — always possible
// in a dense order). The procedure is O((n+m) α) and complete.

type pointGraph struct {
	nodes  map[string]int // variable name or constant key -> node id
	names  []string
	adj    [][]edge
	neq    [][2]int
	consts map[int]float64 // node id -> pinned constant value
}

type edge struct {
	to     int
	strict bool
}

func newPointGraph() *pointGraph {
	return &pointGraph{nodes: make(map[string]int), consts: make(map[int]float64)}
}

func (g *pointGraph) node(key string) int {
	if id, ok := g.nodes[key]; ok {
		return id
	}
	id := len(g.names)
	g.nodes[key] = id
	g.names = append(g.names, key)
	g.adj = append(g.adj, nil)
	return id
}

func (g *pointGraph) varNode(name string) int { return g.node("v:" + name) }

func (g *pointGraph) constNode(v float64) int {
	key := "c:" + formatConstKey(v)
	id := g.node(key)
	g.consts[id] = v
	return id
}

func formatConstKey(v float64) string {
	// Distinct float64 values get distinct keys; normalize -0.
	if v == 0 {
		v = 0
	}
	return Term{Const: v}.String()
}

func (g *pointGraph) addLe(a, b int, strict bool) {
	g.adj[a] = append(g.adj[a], edge{to: b, strict: strict})
}

func (g *pointGraph) addAtom(a Atom) {
	l := g.termNode(a.Left)
	r := g.termNode(a.Right)
	switch a.Op {
	case Lt:
		g.addLe(l, r, true)
	case Le:
		g.addLe(l, r, false)
	case Eq:
		g.addLe(l, r, false)
		g.addLe(r, l, false)
	case Ne:
		g.neq = append(g.neq, [2]int{l, r})
	case Ge:
		g.addLe(r, l, false)
	case Gt:
		g.addLe(r, l, true)
	}
}

func (g *pointGraph) termNode(t Term) int {
	if t.IsVar() {
		return g.varNode(t.Var)
	}
	return g.constNode(t.Const)
}

// linkConstants adds the strict chain between consecutive distinct
// constants so that the numeric order participates in the graph.
func (g *pointGraph) linkConstants() {
	ids := make([]int, 0, len(g.consts))
	for id := range g.consts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return g.consts[ids[i]] < g.consts[ids[j]] })
	for i := 1; i < len(ids); i++ {
		g.addLe(ids[i-1], ids[i], true)
	}
}

// scc computes strongly connected components with Tarjan's algorithm
// (iterative) and returns the component id of each node.
func (g *pointGraph) scc() []int {
	n := len(g.adj)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var next, ncomp int

	type frame struct {
		v, ei int
	}
	var callStack []frame
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		callStack = append(callStack[:0], frame{v: start})
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.v
			if f.ei < len(g.adj[v]) {
				w := g.adj[v][f.ei].to
				f.ei++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			callStack = callStack[:len(callStack)-1]
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comp
}

// conjSatisfiable reports whether the conjunction has a solution over a
// dense linear order, consulting the solver memo first. Every caller —
// Formula.Satisfiable, Entails' negation search, Simplify — funnels
// through here, so one memo table covers them all.
func conjSatisfiable(c Conj) bool {
	v, _ := conjSatisfiableB(c, nil)
	return v
}

// conjSatisfiableB is conjSatisfiable under a step budget: one step per
// atom plus one for the closure pass. A memo hit is free — a cached
// verdict costs a map lookup, not a solve.
func conjSatisfiableB(c Conj, b *Budget) (bool, error) {
	if !memoEnabled.Load() {
		if err := b.Spend(int64(len(c)) + 1); err != nil {
			return false, err
		}
		return conjSatisfiableUncached(c), nil
	}
	key := conjKey(c)
	if v, ok := satMemo.get(key, b); ok {
		return v, nil
	}
	if err := b.Spend(int64(len(c)) + 1); err != nil {
		return false, err
	}
	v := conjSatisfiableUncached(c)
	satMemo.put(key, v)
	return v, nil
}

// conjSatisfiableUncached is the memo-free solver: build the point graph,
// collapse strongly connected components, check the three realizability
// conditions.
func conjSatisfiableUncached(c Conj) bool {
	g := newPointGraph()
	for _, a := range c {
		// Ground atoms are decided immediately.
		if !a.Left.IsVar() && !a.Right.IsVar() {
			if !a.Op.Holds(a.Left.Const, a.Right.Const) {
				return false
			}
			continue
		}
		// Trivially reflexive atoms.
		if a.Left.IsVar() && a.Right.IsVar() && a.Left.Var == a.Right.Var {
			if !a.Op.Holds(0, 0) {
				return false
			}
			continue
		}
		g.addAtom(a)
	}
	g.linkConstants()
	comp := g.scc()

	// Condition 1: strict edge within a component.
	for v, edges := range g.adj {
		for _, e := range edges {
			if e.strict && comp[v] == comp[e.to] {
				return false
			}
		}
	}
	// Condition 2: disequality within a component.
	for _, p := range g.neq {
		if comp[p[0]] == comp[p[1]] {
			return false
		}
	}
	// Condition 3: two distinct constants in one component.
	pinned := make(map[int]float64)
	for id, v := range g.consts {
		if prev, ok := pinned[comp[id]]; ok && prev != v {
			return false
		}
		pinned[comp[id]] = v
	}
	return true
}

// conjEntails reports whether the satisfiable conjunction cf entails the
// DNF g: cf ⇒ g iff cf ∧ ¬g is unsatisfiable. ¬g is a conjunction of
// disjunctions of negated atoms; the procedure searches over one negated
// atom per disjunct, pruning unsatisfiable partial choices.
func conjEntails(cf Conj, g Formula) bool {
	// cf ∧ ¬g satisfiable ⇒ entailment fails.
	sat, _ := negationSatisfiableB(cf, g, 0, nil)
	return !sat
}

// negationSatisfiableB is the negation search under a step budget: one
// step per visited branch of the (potentially exponential) choice tree,
// so a budgeted caller can stop a hostile entailment check.
func negationSatisfiableB(acc Conj, g Formula, i int, b *Budget) (bool, error) {
	if err := b.Spend(1); err != nil {
		return false, err
	}
	sat, err := conjSatisfiableB(acc, b)
	if err != nil {
		return false, err
	}
	if !sat {
		return false, nil
	}
	if i == len(g) {
		return true, nil
	}
	disjunct := g[i]
	if len(disjunct) == 0 {
		// ¬(true) = false: this branch kills every choice.
		return false, nil
	}
	for _, a := range disjunct {
		neg := Atom{Left: a.Left, Op: a.Op.Negate(), Right: a.Right}
		ok, err := negationSatisfiableB(append(acc[:len(acc):len(acc)], neg), g, i+1, b)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}
