package constraint

import (
	"errors"
	"sync/atomic"
)

// Solver step budgets. The dense-order negation search (Entails over
// multi-variable DNF) and the set-order closure are the two procedures in
// this package whose cost is not polynomial in the input size; a hostile
// or pathological query can make a single solver call run for a long
// time. A Budget bounds the number of elementary solver steps one request
// may spend across all of its solver calls, and doubles as the hook
// through which request cancellation reaches inside a running solve: the
// owner installs a check function (typically wrapping context.Err) that
// the budget consults periodically.
//
// A nil *Budget is valid everywhere and never stops anything, so the
// unbudgeted entry points (Satisfiable, Entails, …) simply pass nil.

// ErrBudget is returned by the budgeted solver entry points when the step
// budget is exhausted. Callers distinguish it from a cancellation error
// (whatever the installed check function returns) with errors.Is.
var ErrBudget = errors.New("constraint: solver step budget exhausted")

// budgetCheckInterval is how many spent steps may elapse between
// consultations of the cancellation check function.
const budgetCheckInterval = 256

// A Budget bounds solver work and propagates cancellation. It is safe for
// concurrent use: parallel evaluation workers may share one budget.
//
// A budget also serves as the per-caller accounting token for the solver
// memo: every memo lookup made under a budget bumps that budget's own
// hit/miss counters in addition to the process-wide ones, so concurrent
// engines each see exactly their own memo traffic (MemoCounts) instead of
// a snapshot diff of shared counters.
type Budget struct {
	remaining  atomic.Int64 // meaningful only when limited
	limited    bool
	sinceCheck atomic.Int64
	check      func() error // optional; non-nil error aborts the solve

	spent      atomic.Int64 // steps consumed (profiling)
	memoHits   atomic.Uint64
	memoMisses atomic.Uint64
}

// NewBudget returns a budget of maxSteps elementary solver steps.
// maxSteps <= 0 means unlimited steps; check, if non-nil, is consulted at
// least every budgetCheckInterval steps and its error (e.g. a wrapped
// context cancellation) aborts the solve.
func NewBudget(maxSteps int64, check func() error) *Budget {
	b := &Budget{limited: maxSteps > 0, check: check}
	b.remaining.Store(maxSteps)
	return b
}

// Spend consumes n steps. It returns ErrBudget when the budget is
// exhausted, the check function's error when cancellation is observed,
// and nil otherwise. Spend on a nil budget is free and never fails.
func (b *Budget) Spend(n int64) error {
	if b == nil {
		return nil
	}
	b.spent.Add(n)
	if b.limited && b.remaining.Add(-n) < 0 {
		return ErrBudget
	}
	if b.check != nil && b.sinceCheck.Add(n) >= budgetCheckInterval {
		b.sinceCheck.Store(0)
		return b.check()
	}
	return nil
}

// Remaining reports the steps left; it returns a negative number once the
// budget is exhausted and math-irrelevant values for unlimited budgets.
func (b *Budget) Remaining() int64 {
	if b == nil || !b.limited {
		return 1<<63 - 1
	}
	return b.remaining.Load()
}

// Spent reports the elementary solver steps consumed through this budget
// so far (limited or not). Spent on a nil budget is 0.
func (b *Budget) Spent() int64 {
	if b == nil {
		return 0
	}
	return b.spent.Load()
}

// MemoCounts reports the solver-memo hits and misses observed through this
// budget: exactly the lookups made by solver calls that carried it, so the
// pair is attributable to one caller even when the memo itself is shared
// process-wide. MemoCounts on a nil budget is 0, 0.
func (b *Budget) MemoCounts() (hits, misses uint64) {
	if b == nil {
		return 0, 0
	}
	return b.memoHits.Load(), b.memoMisses.Load()
}

// noteMemo records one memo lookup outcome against the budget; nil-safe so
// unbudgeted solver entry points can pass nil through the memo tables.
func (b *Budget) noteMemo(hit bool) {
	if b == nil {
		return
	}
	if hit {
		b.memoHits.Add(1)
	} else {
		b.memoMisses.Add(1)
	}
}

// --- Budgeted entry points (dense order) -------------------------------------

// SatisfiableWithin is Satisfiable under a step budget: it reports the
// same verdict, or an error when the budget is exhausted or the budget's
// cancellation check fires mid-solve.
func (f Formula) SatisfiableWithin(b *Budget) (bool, error) {
	for _, c := range f {
		ok, err := conjSatisfiableB(c, b)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// EntailsWithin is Entails under a step budget. The exponential negation
// search spends one step per branch, so a hostile multi-variable formula
// cannot run unboundedly.
func (f Formula) EntailsWithin(g Formula, b *Budget) (bool, error) {
	if b == nil || !memoEnabled.Load() {
		return f.entailsBudgeted(g, b)
	}
	dst := formulaKeyTo(make([]byte, 0, 96), f)
	dst = append(dst, '\x02')
	key := string(formulaKeyTo(dst, g))
	if v, ok := entailMemo.get(key, b); ok {
		return v, nil
	}
	v, err := f.entailsBudgeted(g, b)
	if err != nil {
		return false, err // incomplete solve: never cache
	}
	entailMemo.put(key, v)
	return v, nil
}

func (f Formula) entailsBudgeted(g Formula, b *Budget) (bool, error) {
	if fg, ok := f.singleVar(); ok {
		if gg, ok2 := g.singleVarCompatible(fg); ok2 {
			fi, err1 := f.ToInterval(fg)
			gi, err2 := g.ToInterval(gg)
			if err1 == nil && err2 == nil {
				if err := b.Spend(int64(len(fi.Spans()) + len(gi.Spans()) + 1)); err != nil {
					return false, err
				}
				return gi.ContainsGen(fi), nil
			}
		}
	}
	for _, cf := range f {
		sat, err := conjSatisfiableB(cf, b)
		if err != nil {
			return false, err
		}
		if !sat {
			continue // this disjunct contributes no valuations
		}
		unsatNeg, err := negationSatisfiableB(cf, g, 0, b)
		if err != nil {
			return false, err
		}
		if unsatNeg {
			return false, nil
		}
	}
	return true, nil
}

// --- Budgeted entry points (set order) ---------------------------------------

// SatisfiableWithin is SetConj.Satisfiable under a step budget.
func (c SetConj) SatisfiableWithin(b *Budget) (bool, error) {
	cl, err := closeConjB(c, b)
	if err != nil {
		return false, err
	}
	return cl.sat, nil
}

// EntailsWithin is SetConj.Entails under a step budget.
func (c SetConj) EntailsWithin(g SetConj, b *Budget) (bool, error) {
	cl, err := closeConjB(c, b)
	if err != nil {
		return false, err
	}
	if !cl.sat {
		return true, nil // false entails everything
	}
	for _, a := range g {
		if err := b.Spend(1); err != nil {
			return false, err
		}
		if !cl.entailsAtom(a) {
			return false, nil
		}
	}
	return true, nil
}
