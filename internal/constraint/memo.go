package constraint

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Solver memoization. Video-database workloads re-solve structurally
// identical constraint checks over and over: every evaluation round of the
// rule engine re-derives the same dense-order entailments ("G.duration ⇒
// frame") and the same set-order closures, and continuous queries repeat
// them across requests. The memo caches solver verdicts keyed by a
// canonical rendering of the input, so a repeated check is a map lookup
// instead of a graph construction + SCC pass (dense order) or a
// bound-propagation fixpoint (set order).
//
// Invariant: memoization must be invisible — a cached verdict is exactly
// the verdict the solver would compute. Keys are canonical (atom order
// within a conjunction and disjunct order within a formula do not matter),
// and cached closures are immutable after construction. The property test
// TestMemoNeverChangesVerdict checks this against a memo-free run.
//
// The cache is bounded and generation-cleared: when a table reaches its
// entry limit it is dropped wholesale, which keeps the hot path free of
// LRU bookkeeping while bounding memory.

// MemoStats is a snapshot of the memo cache counters.
type MemoStats struct {
	Hits    uint64 // verdicts served from the cache
	Misses  uint64 // verdicts computed and inserted
	Entries int    // entries currently cached (all tables)
	Flushes uint64 // generation clears triggered by the size bound
}

// HitRate returns Hits / (Hits + Misses), or 0 when nothing was looked up.
func (s MemoStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

const defaultMemoLimit = 1 << 16

var (
	memoEnabled atomic.Bool
	memoHits    atomic.Uint64
	memoMisses  atomic.Uint64
	memoFlushes atomic.Uint64

	satMemo     = newMemoTable() // conjunction key -> satisfiable?
	entailMemo  = newMemoTable() // f key + g key -> entails?
	closureMemo = &closureTable{m: make(map[string]*setClosure), limit: defaultMemoLimit}
)

func init() { memoEnabled.Store(true) }

// SetMemoEnabled switches the solver memo on or off process-wide and
// returns the previous setting. Intended for ablation benchmarks and
// differential tests; leave it on otherwise.
func SetMemoEnabled(on bool) bool { return memoEnabled.Swap(on) }

// MemoEnabled reports whether the solver memo is active.
func MemoEnabled() bool { return memoEnabled.Load() }

// SetMemoLimit bounds the number of entries each memo table may hold
// before being generation-cleared. Non-positive restores the default.
func SetMemoLimit(n int) {
	if n <= 0 {
		n = defaultMemoLimit
	}
	satMemo.setLimit(n)
	entailMemo.setLimit(n)
	closureMemo.setLimit(n)
}

// ResetMemo drops every cached verdict and zeroes the counters.
func ResetMemo() {
	satMemo.clear()
	entailMemo.clear()
	closureMemo.clear()
	memoHits.Store(0)
	memoMisses.Store(0)
	memoFlushes.Store(0)
}

// MemoSnapshot returns the current memo counters.
func MemoSnapshot() MemoStats {
	return MemoStats{
		Hits:    memoHits.Load(),
		Misses:  memoMisses.Load(),
		Entries: satMemo.len() + entailMemo.len() + closureMemo.len(),
		Flushes: memoFlushes.Load(),
	}
}

// memoTable is a bounded map from canonical keys to boolean verdicts.
type memoTable struct {
	mu    sync.Mutex
	m     map[string]bool
	limit int
}

func newMemoTable() *memoTable {
	return &memoTable{m: make(map[string]bool), limit: defaultMemoLimit}
}

// get consults the table and records the outcome against the process-wide
// counters and, when non-nil, the caller's budget — the per-caller side of
// the accounting that lets concurrent engines attribute memo traffic.
func (t *memoTable) get(key string, b *Budget) (verdict, ok bool) {
	t.mu.Lock()
	v, ok := t.m[key]
	t.mu.Unlock()
	if ok {
		memoHits.Add(1)
	} else {
		memoMisses.Add(1)
	}
	b.noteMemo(ok)
	return v, ok
}

func (t *memoTable) put(key string, v bool) {
	t.mu.Lock()
	if len(t.m) >= t.limit {
		t.m = make(map[string]bool)
		memoFlushes.Add(1)
	}
	t.m[key] = v
	t.mu.Unlock()
}

func (t *memoTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

func (t *memoTable) clear() {
	t.mu.Lock()
	t.m = make(map[string]bool)
	t.mu.Unlock()
}

func (t *memoTable) setLimit(n int) {
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// closureTable caches set-order closures. A cached *setClosure is shared
// between callers and never mutated after closeConj returns.
type closureTable struct {
	mu    sync.Mutex
	m     map[string]*setClosure
	limit int
}

func (t *closureTable) get(key string, b *Budget) (*setClosure, bool) {
	t.mu.Lock()
	cl, ok := t.m[key]
	t.mu.Unlock()
	if ok {
		memoHits.Add(1)
	} else {
		memoMisses.Add(1)
	}
	b.noteMemo(ok)
	return cl, ok
}

func (t *closureTable) put(key string, cl *setClosure) {
	t.mu.Lock()
	if len(t.m) >= t.limit {
		t.m = make(map[string]*setClosure)
		memoFlushes.Add(1)
	}
	t.m[key] = cl
	t.mu.Unlock()
}

func (t *closureTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

func (t *closureTable) clear() {
	t.mu.Lock()
	t.m = make(map[string]*setClosure)
	t.mu.Unlock()
}

func (t *closureTable) setLimit(n int) {
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// --- Canonical keys ---------------------------------------------------------

// Keys embed unit separators so that distinct inputs cannot collide, and
// sort the component keys so that order-insensitive inputs (atoms of a
// conjunction, disjuncts of a formula) share one cache entry.

// The key builders are allocation-conscious: a memo hit must cost less
// than the solve it skips, and the dense-order solver has fast paths
// (single-variable interval entailment) in the low microseconds. Keys are
// appended into caller-provided buffers, floats are formatted with
// strconv.AppendFloat into scratch space, and the canonical sort is
// special-cased for the 1- and 2-component shapes that dominate interval
// workloads.

func termKeyTo(dst []byte, t Term) []byte {
	if t.IsVar() {
		dst = append(dst, 'v')
		return append(dst, t.Var...)
	}
	v := t.Const
	if v == 0 {
		v = 0 // normalize -0
	}
	dst = append(dst, 'c')
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

func atomKeyTo(dst []byte, a Atom) []byte {
	dst = termKeyTo(dst, a.Left)
	dst = append(dst, '\x1b', byte(a.Op)+'0', '\x1b')
	return termKeyTo(dst, a.Right)
}

// conjKeyTo appends the canonical key of a conjunction: sorted atom keys,
// each prefixed (not joined) with the separator so that an empty
// component list and a list of one empty component cannot collide.
func conjKeyTo(dst []byte, c Conj) []byte {
	switch len(c) {
	case 0:
		return dst
	case 1:
		dst = append(dst, '\x1f')
		return atomKeyTo(dst, c[0])
	case 2:
		mark := len(dst)
		dst = append(dst, '\x1f')
		dst = atomKeyTo(dst, c[0])
		mid := len(dst)
		dst = append(dst, '\x1f')
		dst = atomKeyTo(dst, c[1])
		if string(dst[mid:]) < string(dst[mark:mid]) {
			k0 := append([]byte(nil), dst[mark:mid]...)
			k1 := append([]byte(nil), dst[mid:]...)
			dst = append(dst[:mark], k1...)
			dst = append(dst, k0...)
		}
		return dst
	}
	keys := make([]string, len(c))
	for i, a := range c {
		keys[i] = string(atomKeyTo(nil, a))
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = append(dst, '\x1f')
		dst = append(dst, k...)
	}
	return dst
}

func conjKey(c Conj) string { return string(conjKeyTo(nil, c)) }

// formulaKeyTo appends the canonical key of a DNF formula: sorted
// disjunct keys, separator-prefixed. The prefix matters here: the empty
// formula (false) and the formula of one empty conjunct (true) must key
// apart.
func formulaKeyTo(dst []byte, f Formula) []byte {
	switch len(f) {
	case 0:
		return dst
	case 1:
		dst = append(dst, '\x1e')
		return conjKeyTo(dst, f[0])
	}
	keys := make([]string, len(f))
	for i, c := range f {
		keys[i] = conjKey(c)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = append(dst, '\x1e')
		dst = append(dst, k...)
	}
	return dst
}

func setTermKey(b *strings.Builder, t SetTerm) {
	if t.IsVar() {
		b.WriteByte('v')
		b.WriteString(t.Var)
		return
	}
	b.WriteByte('l')
	for i, e := range t.Lit {
		if i > 0 {
			b.WriteByte('\x1d')
		}
		b.WriteString(e)
	}
}

func setAtomKey(a SetAtom) string {
	var b strings.Builder
	setTermKey(&b, a.Left)
	b.WriteByte('\x1c')
	setTermKey(&b, a.Right)
	return b.String()
}

// setConjKey returns the canonical key of a set-order conjunction,
// separator-prefixed like conjKey.
func setConjKey(c SetConj) string {
	keys := make([]string, len(c))
	for i, a := range c {
		keys[i] = setAtomKey(a)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteByte('\x1f')
		b.WriteString(k)
	}
	return b.String()
}
