package constraint

import "videodb/internal/interval"

// The temporal value domain of single-variable constraints is the
// generalized-interval algebra; these aliases keep the two packages'
// vocabularies aligned without re-exporting the whole interval API.

// Span is a single time interval (re-exported from internal/interval).
type Span = interval.Span

// Generalized is a generalized time interval (re-exported from
// internal/interval).
type Generalized = interval.Generalized

func full() Span            { return interval.Full() }
func below(c float64) Span  { return interval.Below(c) }
func atMost(c float64) Span { return interval.AtMost(c) }
func point(c float64) Span  { return interval.Point(c) }
func atLeast(c float64) Span {
	return interval.AtLeast(c)
}
func above(c float64) Span             { return interval.Above(c) }
func newGen(spans ...Span) Generalized { return interval.New(spans...) }
func emptyGen() Generalized            { return interval.Empty() }

// Between returns the formula lo < v ∧ v < hi, the duration shape used
// throughout the paper's examples (e.g. duration: (t > a1 ∧ t < b1)).
func Between(v string, lo, hi float64) Formula {
	return Formula{Conj{VarCmp(v, Gt, lo), VarCmp(v, Lt, hi)}}
}

// IntervalOf is a convenience wrapper: the solutions of a duration formula
// over the canonical time variable "t".
func IntervalOf(f Formula) (Generalized, error) { return f.ToInterval("t") }

// DurationFormula builds the canonical duration constraint over the time
// variable "t" from a generalized interval.
func DurationFormula(g Generalized) Formula { return FromInterval("t", g) }
