// Package integration holds black-box tests that drive the whole stack —
// substrate, engine, language, durability, presentation — in one scenario.
package integration

import (
	"os"
	"strings"
	"testing"

	"videodb/internal/core"
	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/video"
)

// openTestDB opens the durable database under the backend selected by
// VIDEODB_TEST_BACKEND ("mem", the default, or "segment"), so CI can run
// this whole scenario — crash cycle included — against both storage
// layouts.
func openTestDB(t *testing.T, dir string) *core.DB {
	t.Helper()
	backend := os.Getenv("VIDEODB_TEST_BACKEND")
	var (
		db  *core.DB
		err error
	)
	switch backend {
	case "", "mem":
		db, err = core.Open(dir)
	case "segment":
		db, err = core.OpenSegment(dir)
	default:
		t.Fatalf("VIDEODB_TEST_BACKEND = %q (want mem or segment)", backend)
	}
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestFullSystemIntegration drives the whole stack in one scenario: a
// synthetic broadcast is generated and populated into a durable database;
// rules using negation, temporal operators, assignments and constructive
// heads are defined; queries run before and after a crash-recovery cycle;
// classification, aggregation and presentation operate on the answers.
func TestFullSystemIntegration(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir)

	// 1. Populate from the video substrate.
	seq := video.Generate(video.GenConfig{
		Seed: 77, DurationSec: 300, NumObjects: 6, AvgShotSec: 10, Presence: 0.3,
	})
	if err := video.Populate(db, seq); err != nil {
		t.Fatal(err)
	}

	// 2. A program exercising class atoms, temporal operators and
	// negation. (The constructive rule is defined later: ⊕-created
	// intervals join the Interval class and would legitimately change the
	// partition and aggregation checks below.)
	rules := []string{
		"appears(O, G) :- Interval(G), Object(O), O in G.entities",
		"later(G1, G2) :- Interval(G1), Interval(G2), G1.duration after G2.duration",
		"offscreen(O, G) :- Object(O), Interval(G), not appears(O, G)",
	}
	for _, r := range rules {
		if err := db.DefineRule(r); err != nil {
			t.Fatalf("%s: %v", r, err)
		}
	}

	// 3. Classification over the entities.
	if err := db.DefineClass("person", ""); err != nil {
		t.Fatal(err)
	}
	if err := db.AssignClass("obj000", "person"); err != nil {
		t.Fatal(err)
	}
	if err := db.AssignClass("obj001", "person"); err != nil {
		t.Fatal(err)
	}

	// 4. Queries before the crash cycle.
	appearances, err := db.Query("?- appears(obj000, G).")
	if err != nil {
		t.Fatal(err)
	}
	if appearances.Count() == 0 {
		t.Fatal("obj000 should appear somewhere")
	}
	off, err := db.Query("?- offscreen(obj000, G).")
	if err != nil {
		t.Fatal(err)
	}
	totalIntervals := len(db.Intervals())
	if appearances.Count()+off.Count() != totalIntervals {
		t.Errorf("appears (%d) + offscreen (%d) != intervals (%d)",
			appearances.Count(), off.Count(), totalIntervals)
	}

	people, err := db.InstancesOf("person")
	if err != nil || len(people) != 2 {
		t.Errorf("people = %v, %v", people, err)
	}

	// 5. Aggregation over screen time.
	screen, err := db.Query(`?- Interval(G), G.kind = "occurrence", obj000 in G.entities.`)
	if err != nil {
		t.Fatal(err)
	}
	total, err := screen.TotalScreenTime("G")
	if err != nil {
		t.Fatal(err)
	}
	if want := seq.Occurrences["obj000"].Duration(); total != want {
		t.Errorf("screen time %v, want %v", total, want)
	}

	// 6. Crash cycle: close, reopen, re-add rules (rules are source).
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db = openTestDB(t, dir)
	defer db.Close()
	for _, r := range rules {
		if err := db.DefineRule(r); err != nil {
			t.Fatal(err)
		}
	}

	again, err := db.Query("?- appears(obj000, G).")
	if err != nil {
		t.Fatal(err)
	}
	if again.Count() != appearances.Count() {
		t.Errorf("appearances after recovery: %d vs %d", again.Count(), appearances.Count())
	}

	// 7. Constructive rule (virtual editing): merge the occurrence
	// intervals of two objects that share a shot, then present a created
	// object.
	if err := db.DefineRule(
		"joint(G1 + G2) :- appears(O1, S), appears(O2, S), " +
			`S.kind = "shot", O1 != O2, ` +
			"appears(O1, G1), appears(O2, G2), " +
			`G1.kind = "occurrence", G2.kind = "occurrence"`); err != nil {
		t.Fatal(err)
	}
	joint, err := db.Query("?- joint(G).")
	if err != nil {
		t.Fatal(err)
	}
	if len(joint.Created) == 0 {
		t.Fatal("expected ⊕-created objects")
	}
	created := joint.Created[0]
	edl, err := core.PresentationOf(created)
	if err != nil {
		t.Fatal(err)
	}
	if edl.Runtime() != created.Duration().Duration() {
		t.Errorf("EDL runtime %v != duration %v", edl.Runtime(), created.Duration().Duration())
	}
	compact, err := edl.Compact(0)
	if err != nil {
		t.Fatal(err)
	}
	if compact.Runtime() != edl.Runtime() {
		t.Errorf("compact changed runtime")
	}

	// 8. Explain and Why work against the same program.
	plan, err := db.Explain("?- offscreen(obj000, G).")
	if err != nil || !strings.Contains(plan, "anti-join") {
		t.Errorf("plan = %q, %v", plan, err)
	}
	// Pick one real appearance to explain.
	oids, err := again.OIDs()
	if err != nil {
		t.Fatal(err)
	}
	why, err := db.Why("appears(obj000, " + string(oids[0]) + ").")
	if err != nil || !strings.Contains(why, "[by") {
		t.Errorf("why = %q, %v", why, err)
	}

	// 9. Virtual editing through Compose matches the constructive result
	// for the same operands.
	occ := db.Object("occ_obj000")
	if occ == nil {
		t.Fatal("occurrence object missing")
	}
	var other object.OID
	for _, name := range seq.Objects() {
		if name != "obj000" && db.Object(object.OID("occ_"+name)) != nil {
			other = object.OID("occ_" + name)
			break
		}
	}
	if other != "" {
		oid, err := db.Compose("occ_obj000", other)
		if err != nil {
			t.Fatal(err)
		}
		want := occ.Duration().Union(db.Object(other).Duration())
		if !db.Object(oid).Duration().Equal(want) {
			t.Errorf("composed duration mismatch")
		}
	}

	// 10. Temporal operator sanity: later is irreflexive on bounded
	// intervals.
	rs, err := db.Query("?- later(G, G).")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Count() != 0 {
		t.Errorf("later(G,G) should be empty, got %d", rs.Count())
	}
	_ = interval.Empty() // keep the import for the helpers above
}
