package integration

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"videodb/internal/server"
	"videodb/internal/video"
)

// TestStreamingSubscriptionE2E is the live-subscription demo scenario:
// a synthetic broadcast is replayed into a running HTTP server by the
// actual `videogen -stream` binary while an SSE subscriber holds a
// standing query, and at quiescence the subscriber's accumulated deltas
// must equal the one-shot answer for the same goal exactly (the
// differential oracle). It runs against whichever storage backend
// VIDEODB_TEST_BACKEND selects, so CI exercises the changelog → pump →
// SSE path over both the WAL and segment layouts.
func TestStreamingSubscriptionE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs videogen")
	}
	root, err := filepath.Abs(filepath.FromSlash("../.."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "videogen")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	build := exec.Command("go", "build", "-o", bin, "./cmd/videogen")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building videogen: %v\n%s", err, out)
	}

	dir := t.TempDir()
	db := openTestDB(t, dir)
	defer db.Close()
	srv := server.New(db)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	const goal = "?- appears_with(X, Y, S)"
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/v1/subscribe?goal="+url.QueryEscape(goal), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status = %d", resp.StatusCode)
	}

	// Reader goroutine: accumulate the answer set, publish each new
	// generation.
	type frame struct {
		Kind string              `json:"kind"`
		Sign int                 `json:"sign"`
		Row  []json.RawMessage   `json:"row"`
		Rows [][]json.RawMessage `json:"rows"`
	}
	key := func(row []json.RawMessage) string {
		parts := make([]string, len(row))
		for i, r := range row {
			parts[i] = string(r)
		}
		return strings.Join(parts, "\x1f")
	}
	type gen struct {
		rows map[string]bool
		err  error
	}
	gens := make(chan gen, 64)
	go func() {
		defer close(gens)
		br := bufio.NewReader(resp.Body)
		rows := make(map[string]bool)
		for {
			ev, err := server.ReadSSE(br)
			if err != nil {
				gens <- gen{err: err}
				return
			}
			if ev.Event == "close" {
				gens <- gen{err: fmt.Errorf("subscription closed: %s", ev.Data)}
				return
			}
			var f frame
			if err := json.Unmarshal([]byte(ev.Data), &f); err != nil {
				gens <- gen{err: err}
				return
			}
			switch f.Kind {
			case "snapshot":
				rows = make(map[string]bool, len(f.Rows))
				for _, r := range f.Rows {
					rows[key(r)] = true
				}
			case "delta":
				if f.Sign > 0 {
					rows[key(f.Row)] = true
				} else {
					delete(rows, key(f.Row))
				}
			}
			snap := make(map[string]bool, len(rows))
			for k := range rows {
				snap[k] = true
			}
			gens <- gen{rows: snap}
		}
	}()

	// Replay the broadcast with the real binary, paced so ingest overlaps
	// live delivery rather than completing before the first flush.
	replay := exec.Command(bin,
		"-stream", "-rate", "200", "-url", ts.URL,
		"-seed", "21", "-duration", "120", "-objects", "6", "-shot", "6", "-presence", "0.3")
	replay.Dir = root
	if out, err := replay.CombinedOutput(); err != nil {
		t.Fatalf("videogen -stream: %v\n%s", err, out)
	}

	// The oracle: what the server itself answers once all batches landed.
	want := make(map[string]bool)
	{
		rs, err := db.Query(goal)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rs.Rows {
			raw := make([]json.RawMessage, len(row))
			for i, v := range row {
				b, err := json.Marshal(v)
				if err != nil {
					t.Fatal(err)
				}
				raw[i] = b
			}
			want[key(raw)] = true
		}
	}
	if len(want) == 0 {
		t.Fatal("replay produced no appears_with facts; widen the sequence")
	}

	// The generated corpus must actually exercise the generator: the same
	// config rendered locally has one prologue + one batch per shot.
	seq := video.Generate(video.GenConfig{
		Seed: 21, DurationSec: 120, NumObjects: 6, AvgShotSec: 6, Presence: 0.3,
	})
	if batches := video.StreamBatches(seq); len(batches) != len(seq.Shots)+1 {
		t.Fatalf("StreamBatches = %d batches for %d shots", len(batches), len(seq.Shots))
	}

	same := func(a, b map[string]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	deadline := time.After(30 * time.Second)
	current := make(map[string]bool)
	for !same(current, want) {
		select {
		case g, ok := <-gens:
			if !ok {
				t.Fatalf("stream ended before convergence: %d/%d rows", len(current), len(want))
			}
			if g.err != nil {
				t.Fatal(g.err)
			}
			current = g.rows
		case <-deadline:
			t.Fatalf("subscriber never converged: %d/%d rows", len(current), len(want))
		}
	}

	// Below the rate limit nothing may be dropped and no resync snapshots
	// should have been needed.
	totals := db.SubscriptionStats()
	if totals.Dropped != 0 {
		t.Errorf("dropped %d deltas during a keep-up replay", totals.Dropped)
	}
	if totals.DeltasPlus == 0 {
		t.Error("no +deltas recorded; subscriber saw only snapshots")
	}
}
