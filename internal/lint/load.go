package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, stderr.Bytes())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists the packages matching the patterns (relative to dir),
// parses their sources with comments, and type-checks them against
// export data produced by the go toolchain — `go list -export` compiles
// dependencies through the build cache, so loading works offline and
// costs roughly one `go build`.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	deps, err := goList(dir, append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Export,Standard"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, d := range deps {
		if d.Export != "" {
			exports[d.ImportPath] = d.Export
		}
	}

	fset := token.NewFileSet()
	imp := exportDataImporter(fset, func(path string) string { return exports[path] })
	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
		}
		var names []string
		for _, f := range t.GoFiles {
			names = append(names, filepath.Join(t.Dir, f))
		}
		pkg, err := checkPackage(fset, t.ImportPath, names, nil, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dir = t.Dir
		out = append(out, pkg)
	}
	return out, nil
}

// CheckFiles parses and type-checks one package from an explicit file
// list, resolving imports through resolve (import path → export-data
// file). This is the entry point the `go vet -vettool` protocol uses:
// vet hands the tool exactly this information in its config file.
func CheckFiles(fset *token.FileSet, path string, files []string, resolve func(string) string) (*Package, error) {
	imp := exportDataImporter(fset, resolve)
	return checkPackage(fset, path, files, nil, imp)
}

// exportDataImporter resolves imports through compiler export data: the
// resolve function maps an import path to an export-data file (empty =
// unknown). The standard gc importer does the decoding.
func exportDataImporter(fset *token.FileSet, resolve func(string) string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file := resolve(path)
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// checkPackage parses the named files (or uses the given sources, keyed
// by file name, when non-nil) and type-checks them as one package.
func checkPackage(fset *token.FileSet, path string, files []string, srcs map[string][]byte, imp types.Importer) (*Package, error) {
	var parsed []*ast.File
	for _, name := range files {
		var src interface{}
		if srcs != nil {
			src = srcs[name]
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: parsed, Types: tpkg, Info: info}, nil
}
