package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// ErrLatch enforces the PR 5 fail-fast contract around latched
// write-path errors (store.Store.walErr, segment.Store.err): once the
// WAL or segment backend has failed, no further mutation may be
// acknowledged.
//
// A latch is an error-typed struct field whose declaration comment
// mentions "latch". For each owner type the analyzer derives the gate
// methods — those whose body tests `recv.<latch> != nil` and returns —
// and then checks:
//
//	A. every exported method on the owner that directly mutates
//	   receiver state consults the latch first (calls a gate method or
//	   reads the latch before the first mutation);
//	B. assignments to the latch never drop it: writing nil is always a
//	   finding, and a non-nil write must be guarded by a `latch == nil`
//	   check (or an earlier gate call) so the FIRST failure is the one
//	   that sticks.
var ErrLatch = &Analyzer{
	Name: "errlatch",
	Doc: "flag write-path methods that mutate state without consulting the latched " +
		"WAL/backend error, and latch assignments that drop the first failure",
	Scope: []string{"internal/store", "internal/store/segment"},
	Run:   runErrLatch,
}

var latchCommentRE = regexp.MustCompile(`(?i)\blatch`)

// latchInfo describes one latched error field.
type latchInfo struct {
	owner *types.Named
	field string
	gates map[string]bool // methods that consult the latch and bail
}

func runErrLatch(pass *Pass) error {
	latches := findLatches(pass)
	if len(latches) == 0 {
		return nil
	}
	for _, l := range latches {
		findGates(pass, l)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			for _, l := range latches {
				if named := recvNamed(pass, fd); named == l.owner {
					checkGateBeforeMutation(pass, fd, l)
					checkLatchAssignments(pass, fd, l)
				}
			}
		}
	}
	return nil
}

// findLatches locates error-typed struct fields documented as latches.
func findLatches(pass *Pass) []*latchInfo {
	var out []*latchInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			stype, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Defs[ts.Name]
			if !ok {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			for _, field := range stype.Fields.List {
				tv, ok := pass.Info.Types[field.Type]
				if !ok || tv.Type == nil || tv.Type.String() != "error" {
					continue
				}
				text := field.Doc.Text() + " " + field.Comment.Text()
				if !latchCommentRE.MatchString(text) {
					continue
				}
				for _, name := range field.Names {
					out = append(out, &latchInfo{
						owner: named,
						field: name.Name,
						gates: map[string]bool{},
					})
				}
			}
			return true
		})
	}
	return out
}

// recvNamed resolves the named type of a method receiver.
func recvNamed(pass *Pass, fd *ast.FuncDecl) *types.Named {
	if len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := pass.Info.Types[fd.Recv.List[0].Type]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isLatchRead reports whether e reads l's field off the method
// receiver (recv.walErr, s.err, …).
func isLatchRead(pass *Pass, l *latchInfo, recv string, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != l.field {
		return false
	}
	root := rootIdent(sel.X)
	return root != nil && root.Name == recv
}

// findGates records the owner's methods whose body contains
// `if recv.<latch> != nil { … return … }` — the gate idiom — or that
// return the latch directly.
func findGates(pass *Pass, l *latchInfo) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || recvNamed(pass, fd) != l.owner {
				continue
			}
			recv := receiverIdent(fd)
			gate := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ifs, ok := n.(*ast.IfStmt)
				if !ok || gate {
					return !gate
				}
				cmp, ok := ifs.Cond.(*ast.BinaryExpr)
				if !ok || cmp.Op != token.NEQ {
					return true
				}
				if isLatchRead(pass, l, recv, cmp.X) || isLatchRead(pass, l, recv, cmp.Y) {
					gate = true
				}
				return !gate
			})
			if gate {
				l.gates[fd.Name.Name] = true
			}
		}
	}
}

// checkGateBeforeMutation enforces rule A on exported methods.
func checkGateBeforeMutation(pass *Pass, fd *ast.FuncDecl, l *latchInfo) {
	if !fd.Name.IsExported() || l.gates[fd.Name.Name] {
		return
	}
	recv := receiverIdent(fd)
	if recv == "" {
		return
	}
	consulted := false
	var firstMutation ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if firstMutation != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn, ok := calleeObject(pass.Info, n).(*types.Func); ok {
				if l.gates[fn.Name()] && sameReceiverCall(n, recv) {
					consulted = true
				}
			}
		case *ast.IfStmt:
			if cond, ok := n.Cond.(*ast.BinaryExpr); ok {
				if isLatchRead(pass, l, recv, cond.X) || isLatchRead(pass, l, recv, cond.Y) {
					consulted = true
				}
			}
		case *ast.AssignStmt:
			if consulted {
				return true
			}
			for _, lhs := range n.Lhs {
				if mutatesReceiver(recv, lhs) {
					firstMutation = n
					return false
				}
			}
		case *ast.IncDecStmt:
			if !consulted && mutatesReceiver(recv, n.X) {
				firstMutation = n
				return false
			}
		case *ast.FuncLit:
			return false // runs at an unknown time
		}
		return true
	})
	if firstMutation != nil {
		pass.Reportf(firstMutation.Pos(),
			"%s.%s mutates receiver state before consulting the latched error %s.%s: "+
				"once the WAL/backend has failed no further mutation may be acknowledged "+
				"(gate with the latch check first)",
			l.owner.Obj().Name(), fd.Name.Name, l.owner.Obj().Name(), l.field)
	}
}

// sameReceiverCall reports whether the call's receiver chain is rooted
// at recv (s.walHealthy(), s.tail.healthy()).
func sameReceiverCall(call *ast.CallExpr, recv string) bool {
	x := recvOfMethodCall(call)
	if x == nil {
		return false
	}
	root := rootIdent(x)
	return root != nil && root.Name == recv
}

// mutatesReceiver reports whether the lvalue writes through the
// receiver (s.objects[k] = v, s.err = e, s.schemaVer++).
func mutatesReceiver(recv string, lhs ast.Expr) bool {
	root := rootIdent(lhs)
	if root == nil || root.Name != recv {
		return false
	}
	// `s := ...` rebinding is not a receiver mutation; require a
	// selector or index somewhere in the chain.
	switch ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return false
	}
	return true
}

// checkLatchAssignments enforces rule B on every assignment to the
// latch field within the method.
func checkLatchAssignments(pass *Pass, fd *ast.FuncDecl, l *latchInfo) {
	recv := receiverIdent(fd)
	if recv == "" {
		return
	}
	// Guard condition seen on the path: latch == nil, or an earlier
	// gate call in the body. Approximated by lexical order — the repo
	// idiom puts the guard directly around the store.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for i, lhs := range as.Lhs {
			if !isLatchRead(pass, l, recv, lhs) {
				continue
			}
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && id.Name == "nil" {
				pass.Reportf(as.Pos(),
					"assignment clears the latched error %s.%s: the latch records the "+
						"FIRST failure and must never be dropped",
					l.owner.Obj().Name(), l.field)
				continue
			}
			if !latchStoreGuarded(pass, fd, l, recv, as) {
				pass.Reportf(as.Pos(),
					"unguarded store to latched error %s.%s may overwrite the first "+
						"failure: guard with `if %s.%s == nil`",
					l.owner.Obj().Name(), l.field, recv, l.field)
			}
		}
		return true
	})
}

// latchStoreGuarded reports whether the assignment is protected by a
// `latch == nil` check or preceded by a gate call: either guarantees
// only the first failure is recorded.
func latchStoreGuarded(pass *Pass, fd *ast.FuncDecl, l *latchInfo, recv string, target *ast.AssignStmt) bool {
	guarded := false
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if guarded {
			return false
		}
		switch n := n.(type) {
		case *ast.IfStmt:
			if containsStmt(n, target) {
				if condChecksLatchNil(pass, l, recv, n.Cond) {
					guarded = true
					return false
				}
			}
		case *ast.CallExpr:
			if n.Pos() < target.Pos() {
				if fn, ok := calleeObject(pass.Info, n).(*types.Func); ok {
					if l.gates[fn.Name()] && sameReceiverCall(n, recv) {
						guarded = true
						return false
					}
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
	return guarded
}

// condChecksLatchNil reports whether the condition (possibly a &&/||
// chain) includes `recv.latch == nil`.
func condChecksLatchNil(pass *Pass, l *latchInfo, recv string, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		cmp, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		if cmp.Op != token.EQL {
			return true
		}
		isNil := func(e ast.Expr) bool {
			id, ok := ast.Unparen(e).(*ast.Ident)
			return ok && id.Name == "nil"
		}
		if (isLatchRead(pass, l, recv, cmp.X) && isNil(cmp.Y)) ||
			(isLatchRead(pass, l, recv, cmp.Y) && isNil(cmp.X)) {
			found = true
		}
		return !found
	})
	return found
}

// containsStmt reports whether target sits inside n.
func containsStmt(n ast.Node, target ast.Node) bool {
	return n.Pos() <= target.Pos() && target.End() <= n.End()
}
