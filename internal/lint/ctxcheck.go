package lint

import (
	"go/ast"
	"go/types"
)

// CtxCheck enforces the PR 2 cancellation contract: request-serving
// code must thread the caller's context, never mint its own root.
//
// It flags (1) context.Background()/context.TODO() calls — except in
// main/init, in single-statement delegation wrappers (the documented
// `Query → QueryContext(context.Background(), …)` convenience idiom),
// and in comparisons; (2) context.Context stored in struct fields,
// which hides a lifetime from every caller; and (3) for/range loops
// inside functions that take a context but whose loop body calls other
// code without ever touching a context — an unbounded tuple/round/
// segment sweep with no cancellation point.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc: "flag context.Background()/TODO() on request paths, contexts in struct " +
		"fields, and loops with no cancellation check in context-taking functions",
	Scope: []string{"internal/server", "internal/core", "internal/datalog", "internal/store"},
	Run:   runCtxCheck,
}

func runCtxCheck(pass *Pass) error {
	for _, f := range pass.Files {
		checkCtxFields(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxRoots(pass, fd)
			checkCtxLoops(pass, fd)
		}
	}
	return nil
}

// checkCtxFields flags struct fields of type context.Context.
func checkCtxFields(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		stype, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range stype.Fields.List {
			tv, ok := pass.Info.Types[field.Type]
			if !ok || tv.Type == nil || !isContextType(tv.Type) {
				continue
			}
			pass.Reportf(field.Pos(),
				"context.Context stored in a struct field: the context's lifetime is "+
					"hidden from callers — pass it as the first parameter instead")
		}
		return true
	})
}

// isCtxRootCall reports whether the call is context.Background() or
// context.TODO(), returning which.
func isCtxRootCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	switch funcFullName(info, call) {
	case "context.Background":
		return "context.Background()", true
	case "context.TODO":
		return "context.TODO()", true
	}
	return "", false
}

// isDelegationWrapper reports whether fd is the convenience-wrapper
// idiom: a single return statement forwarding to a context-taking
// variant, e.g. `func (db *DB) Query(src string) { return
// db.QueryContext(context.Background(), src) }`. Those wrappers are the
// documented non-request entry points; the request paths call the
// *Context form directly.
func isDelegationWrapper(fd *ast.FuncDecl) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, res := range ret.Results {
		if _, ok := ast.Unparen(res).(*ast.CallExpr); ok {
			return true
		}
	}
	return false
}

// checkCtxRoots flags fresh context roots inside fd.
func checkCtxRoots(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil && (fd.Name.Name == "main" || fd.Name.Name == "init") {
		return
	}
	if isDelegationWrapper(fd) {
		return
	}
	// Track parents so comparisons (ctx != context.Background()) are
	// exempt: comparing against the root is a sentinel test, not a use.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := isCtxRootCall(pass.Info, call)
		if !ok {
			return true
		}
		for i := len(stack) - 2; i >= 0; i-- {
			switch p := stack[i].(type) {
			case *ast.BinaryExpr:
				return true
			case *ast.ParenExpr:
				continue
			case ast.Node:
				_ = p
			}
			break
		}
		pass.Reportf(call.Pos(),
			"%s on a request-serving path severs cancellation: thread the caller's "+
				"context (add a ctx parameter or use the *Context variant)", name)
		return true
	})
}

// checkCtxLoops flags for/range loops that do work with no cancellation
// point inside functions that were handed a context.
func checkCtxLoops(pass *Pass, fd *ast.FuncDecl) {
	hasCtxParam := false
	for _, p := range fd.Type.Params.List {
		if tv, ok := pass.Info.Types[p.Type]; ok && tv.Type != nil && isContextType(tv.Type) {
			hasCtxParam = true
		}
	}
	if !hasCtxParam {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		if !loopDoesWork(pass, body) || mentionsContext(pass.Info, body) {
			return true
		}
		pass.Reportf(n.Pos(),
			"loop body calls other code but never consults the function's context: "+
				"an unbounded sweep with no cancellation point (check ctx.Err() or "+
				"pass ctx into the calls)")
		// Still descend: nested loops are judged on their own bodies.
		return true
	})
}

// loopDoesWork reports whether the loop body calls a declared function,
// method, or function value — a pure index/copy/append loop needs no
// cancellation point, so builtins and conversions do not count.
func loopDoesWork(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch obj := calleeObject(pass.Info, call).(type) {
		case *types.Func:
			found = true
		case *types.Var:
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				found = true
			}
		}
		return !found
	})
	return found
}
