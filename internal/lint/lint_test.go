package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// Golden-package harness, analysistest style: each directory under
// testdata/src is one package; a comment `// want "regexp"` on a line
// asserts an unsuppressed diagnostic whose message matches lands on
// that line, and every unsuppressed diagnostic must be wanted. Files
// exercising the suppression facility carry //videolint:ignore
// directives and no wants: they pass only if suppression works.

var (
	exportsOnce sync.Once
	exportsMap  map[string]string
	exportsErr  error
)

// stdExports builds an import-path → export-data map for the standard
// library packages the golden packages use (plus transitive deps),
// through the go build cache — no network, roughly one `go build` warm.
func stdExports(t *testing.T) func(string) string {
	t.Helper()
	exportsOnce.Do(func() {
		pkgs, err := goList(".", "list", "-export", "-deps",
			"-json=ImportPath,Export,Standard",
			"context", "sync", "sync/atomic", "os", "time", "expvar", "fmt", "io")
		if err != nil {
			exportsErr = err
			return
		}
		exportsMap = make(map[string]string, len(pkgs))
		for _, p := range pkgs {
			if p.Export != "" {
				exportsMap[p.ImportPath] = p.Export
			}
		}
	})
	if exportsErr != nil {
		t.Fatalf("listing std export data: %v", exportsErr)
	}
	return func(path string) string { return exportsMap[path] }
}

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// goldenWant is one expectation parsed from a `// want` comment.
type goldenWant struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func runGolden(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkgDir := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	var wants []*goldenWant
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(pkgDir, e.Name())
		files = append(files, name)
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, m[1], err)
				}
				wants = append(wants, &goldenWant{file: name, line: i + 1, pattern: re})
			}
		}
	}

	// Give the golden package an import path inside the analyzer's
	// scope, so Run applies it exactly as it would on the real tree.
	ipath := "lint_testdata/" + dir
	if len(a.Scope) > 0 {
		ipath += "/" + a.Scope[0]
	}
	fset := token.NewFileSet()
	pkg, err := CheckFiles(fset, ipath, files, stdExports(t))
	if err != nil {
		t.Fatalf("type-checking golden package %s: %v", dir, err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	var unexpected []string
	for _, d := range Unsuppressed(diags) {
		found := false
		for _, w := range wants {
			if d.Pos.Filename == w.file && d.Pos.Line == w.line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
			}
		}
		if !found {
			unexpected = append(unexpected, d.String())
		}
	}
	sort.Strings(unexpected)
	for _, u := range unexpected {
		t.Errorf("unexpected diagnostic: %s", u)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: wanted diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func TestLockCheckGolden(t *testing.T)   { runGolden(t, LockCheck, "lockcheck_a") }
func TestLockRankGolden(t *testing.T)    { runGolden(t, LockCheck, "core") }
func TestLockIgnoreGolden(t *testing.T)  { runGolden(t, LockCheck, "lockcheck_ok") }
func TestCtxCheckGolden(t *testing.T)    { runGolden(t, CtxCheck, "ctxcheck_a") }
func TestErrLatchGolden(t *testing.T)    { runGolden(t, ErrLatch, "errlatch_a") }
func TestMetricCheckGolden(t *testing.T) { runGolden(t, MetricCheck, "metriccheck_a") }

// TestIgnoreDirectiveValidation asserts malformed suppressions are
// themselves diagnostics: ignores silencing nothing for free.
func TestIgnoreDirectiveValidation(t *testing.T) {
	runGolden(t, LockCheck, "ignore_bad")
}

// TestAnalyzersScoped asserts the scope tables cover the packages the
// issue names.
func TestAnalyzersScoped(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		path string
		want bool
	}{
		{LockCheck, "videodb/internal/store", true},
		{LockCheck, "videodb/internal/store/segment", true},
		{LockCheck, "videodb/internal/core", true},
		{LockCheck, "videodb/internal/datalog", true},
		{LockCheck, "videodb/internal/server", false},
		{CtxCheck, "videodb/internal/server", true},
		{ErrLatch, "videodb/internal/store", true},
		{ErrLatch, "videodb/internal/core", false},
		{MetricCheck, "videodb/internal/server", true},
		{MetricCheck, "videodb/internal/store", false},
	}
	for _, c := range cases {
		if got := c.a.AppliesTo(c.path); got != c.want {
			t.Errorf("%s.AppliesTo(%s) = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
}

// TestSuiteCleanOnRepo runs the full suite over the real engine
// packages and requires zero unsuppressed diagnostics — the bring-up
// contract, enforced forever.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := Run(pkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Unsuppressed(diags) {
		t.Errorf("unsuppressed: %s", d)
	}
	// Every suppression must carry a reason (the directive parser
	// enforces it; this guards the invariant end to end).
	for _, d := range diags {
		if d.Suppressed && strings.TrimSpace(d.Reason) == "" {
			t.Errorf("suppressed without reason: %s", d)
		}
	}
}
