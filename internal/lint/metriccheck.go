package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// MetricCheck enforces the server's metric conventions: every metric
// name matches videodb_[a-z0-9_]+; metrics are declared (helper
// registration or literal `# TYPE` exposition) in a single function;
// expvar publication happens in a single mirror site; and the
// Prometheus exposition and the expvar mirror stay in sync — every
// atomic counter of the metrics struct that one side reads must be
// read by the other, and a counter that is incremented but exposed by
// neither side is dead weight that silently lies to operators.
var MetricCheck = &Analyzer{
	Name: "metriccheck",
	Doc: "flag metric names off the videodb_* convention, registration outside the " +
		"single site, and Prometheus/expvar mirror divergence",
	Scope: []string{"internal/server"},
	Run:   runMetricCheck,
}

var (
	metricTokenRE = regexp.MustCompile(`videodb_[A-Za-z0-9_]*`)
	metricNameRE  = regexp.MustCompile(`^videodb_[a-z0-9_]+$`)
	expoLineRE    = regexp.MustCompile(`# (?:TYPE|HELP) \S+`)
	typeLineRE    = regexp.MustCompile(`# TYPE (\S+)`)
)

// metricHelperNames are the local registration helpers whose first
// argument is a metric name.
var metricHelperNames = map[string]bool{"counter": true, "gauge": true, "histogram": true}

func runMetricCheck(pass *Pass) error {
	var expoFns []*ast.FuncDecl          // functions writing `# TYPE` exposition text
	var expvarFns []*ast.FuncDecl        // functions calling into package expvar
	declared := map[string][]token.Pos{} // metric name → declaration positions

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isExpo, usesExpvar := false, false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BasicLit:
					if n.Kind != token.STRING {
						return true
					}
					text, err := strconv.Unquote(n.Value)
					if err != nil {
						return true
					}
					// Convention: every videodb_* token in any literal.
					for _, tok := range metricTokenRE.FindAllString(text, -1) {
						if !metricNameRE.MatchString(tok) {
							pass.Reportf(n.Pos(),
								"metric name %q violates the videodb_[a-z0-9_]+ convention", tok)
						}
					}
					// `# TYPE`/`# HELP` lines mark exposition; only the
					// TYPE line is the metric's declaration.
					if expoLineRE.MatchString(text) {
						isExpo = true
					}
					for _, m := range typeLineRE.FindAllStringSubmatch(text, -1) {
						// Skip format placeholders ("# TYPE %s counter"
						// inside a helper): the helper's call sites carry
						// the names.
						if strings.Contains(m[1], "%") {
							continue
						}
						declared[m[1]] = append(declared[m[1]], n.Pos())
					}
				case *ast.CallExpr:
					if fn, ok := calleeObject(pass.Info, n).(*types.Func); ok {
						if fn.Pkg() != nil && fn.Pkg().Path() == "expvar" {
							usesExpvar = true
						}
					}
					// Registration helpers: counter("name", v), gauge("name", v).
					name := helperName(n)
					if metricHelperNames[name] && len(n.Args) > 0 {
						if lit, ok := ast.Unparen(n.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
							if s, err := strconv.Unquote(lit.Value); err == nil {
								if !metricNameRE.MatchString(s) {
									pass.Reportf(lit.Pos(),
										"metric name %q violates the videodb_[a-z0-9_]+ convention", s)
								}
								declared[s] = append(declared[s], lit.Pos())
							}
						}
					}
				}
				return true
			})
			if isExpo {
				expoFns = append(expoFns, fd)
			}
			if usesExpvar {
				expvarFns = append(expvarFns, fd)
			}
		}
	}

	// One exposition site, one expvar mirror site.
	if len(expoFns) > 1 {
		for _, fd := range expoFns[1:] {
			pass.Reportf(fd.Pos(),
				"metric exposition in %s: all metrics must be written from the single "+
					"registration site %s", fd.Name.Name, expoFns[0].Name.Name)
		}
	}
	if len(expvarFns) > 1 {
		for _, fd := range expvarFns[1:] {
			pass.Reportf(fd.Pos(),
				"expvar use in %s: the expvar mirror must be published from the single "+
					"site %s", fd.Name.Name, expvarFns[0].Name.Name)
		}
	}

	// Duplicate declarations of one metric name.
	var names []string
	for name := range declared {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		seen := map[int]bool{}
		for _, pos := range declared[name] {
			seen[pass.Fset.Position(pos).Line] = true
		}
		if len(seen) > 1 {
			pass.Reportf(declared[name][1],
				"metric %q is declared at %d sites: each metric has exactly one "+
					"declaration", name, len(seen))
		}
	}

	checkMirror(pass, expoFns)
	return nil
}

// helperName returns the bare callee name for local helper calls
// (declared functions, closures, or function-typed variables).
func helperName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// checkMirror verifies the Prometheus exposition and the expvar mirror
// read the same counters. The metrics-holding structs are those with at
// least three atomic.Uint64/atomic.Int64 fields.
func checkMirror(pass *Pass, expoFns []*ast.FuncDecl) {
	counters := map[string]bool{} // field names of the metrics struct(s)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stype, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			var atomics []string
			for _, field := range stype.Fields.List {
				tv, ok := pass.Info.Types[field.Type]
				if !ok || tv.Type == nil {
					continue
				}
				switch tv.Type.String() {
				case "sync/atomic.Uint64", "sync/atomic.Int64":
					for _, name := range field.Names {
						atomics = append(atomics, name.Name)
					}
				}
			}
			if len(atomics) >= 3 {
				for _, name := range atomics {
					counters[name] = true
				}
			}
			return true
		})
	}
	if len(counters) == 0 {
		return
	}

	isExpo := map[*ast.FuncDecl]bool{}
	for _, fd := range expoFns {
		isExpo[fd] = true
	}
	promLoad := map[string]token.Pos{}
	mirrorLoad := map[string]token.Pos{}
	added := map[string]token.Pos{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				outer, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				inner, ok := ast.Unparen(outer.X).(*ast.SelectorExpr)
				if !ok || !counters[inner.Sel.Name] {
					return true
				}
				field := inner.Sel.Name
				switch outer.Sel.Name {
				case "Load":
					if isExpo[fd] {
						if _, ok := promLoad[field]; !ok {
							promLoad[field] = call.Pos()
						}
					} else {
						if _, ok := mirrorLoad[field]; !ok {
							mirrorLoad[field] = call.Pos()
						}
					}
				case "Add", "Store":
					if _, ok := added[field]; !ok {
						added[field] = call.Pos()
					}
				}
				return true
			})
		}
	}

	var fields []string
	for f := range counters {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	for _, field := range fields {
		pPos, inProm := promLoad[field]
		mPos, inMirror := mirrorLoad[field]
		aPos, isAdded := added[field]
		switch {
		case inProm && !inMirror:
			pass.Reportf(pPos,
				"counter %s is exposed to Prometheus but missing from the expvar "+
					"mirror: the two views must not diverge", field)
		case inMirror && !inProm:
			pass.Reportf(mPos,
				"counter %s is in the expvar mirror but never exposed to Prometheus: "+
					"the two views must not diverge", field)
		case isAdded && !inProm && !inMirror:
			pass.Reportf(aPos,
				"counter %s is incremented but exposed by neither Prometheus nor "+
					"expvar: dead metric (expose it or delete it)", field)
		}
	}
}
