// Package errlatch_a reproduces the PR 5 fail-fast contract
// violations: mutating acknowledged state without consulting the
// latched error, and latch assignments that drop or overwrite the
// first failure.
package errlatch_a

// Store mirrors the WAL-backed store.
type Store struct {
	data map[string]int
	err  error // err latches the first write failure
}

// healthy is the gate: consult the latch before any write.
func (s *Store) healthy() error {
	if s.err != nil {
		return s.err
	}
	return nil
}

func (s *Store) appendLog(k string) error { return nil }

// Put mutates before consulting the latch: the bug shape.
func (s *Store) Put(k string, v int) error {
	s.data[k] = v // want "mutates receiver state before consulting the latched error"
	return s.appendLog(k)
}

// PutGated consults the gate first. No finding.
func (s *Store) PutGated(k string, v int) error {
	if err := s.healthy(); err != nil {
		return err
	}
	s.data[k] = v
	return s.appendLog(k)
}

// Reset drops the latch: the first failure must never be forgotten.
func (s *Store) Reset() {
	s.err = nil // want "clears the latched error" // want "mutates receiver state before consulting"
}

// Record overwrites the latch unguarded: a second failure would
// replace the first, which is the one that explains the corruption.
func (s *Store) Record(err error) {
	s.err = err // want "may overwrite the first" // want "mutates receiver state before consulting"
}

// RecordFirst keeps only the first failure. No finding.
func (s *Store) RecordFirst(err error) {
	if s.err == nil {
		s.err = err
	}
}
