// Package ctxcheck_a reproduces the cancellation-contract violations:
// fresh context roots on request paths, contexts hidden in struct
// fields, and unbounded loops with no cancellation point.
package ctxcheck_a

import (
	"context"
	"io"
)

// session hides a context's lifetime in a field.
type session struct {
	ctx context.Context // want "context.Context stored in a struct field"
	w   io.Writer
}

type DB struct{}

func (db *DB) QueryContext(ctx context.Context, q string) error { return ctx.Err() }

// Query is the sanctioned single-statement delegation wrapper: the
// documented non-request entry point. No finding.
func (db *DB) Query(q string) error {
	return db.QueryContext(context.Background(), q)
}

// handle mints a root context on a request path.
func (db *DB) handle(q string) error {
	ctx := context.Background() // want "context.Background\(\) on a request-serving path"
	return db.QueryContext(ctx, q)
}

// todo is the same violation spelled TODO (not a single-statement
// wrapper, so the delegation exemption does not apply).
func (db *DB) todo(q string) error {
	err := db.QueryContext(context.TODO(), q) // want "context.TODO\(\) on a request-serving path"
	return err
}

// isRoot compares against the root: a sentinel test, not a use. No
// finding.
func isRoot(ctx context.Context) bool {
	return ctx != context.Background()
}

// sweep loops over rows doing work with no cancellation point.
func (db *DB) sweep(ctx context.Context, rows []string) error {
	for _, r := range rows { // want "no cancellation point"
		process(r)
	}
	return ctx.Err()
}

// sweepChecked consults ctx every iteration. No finding.
func (db *DB) sweepChecked(ctx context.Context, rows []string) error {
	for _, r := range rows {
		if err := ctx.Err(); err != nil {
			return err
		}
		process(r)
	}
	return nil
}

func process(string) {}
