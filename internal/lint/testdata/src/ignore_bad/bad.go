// Package ignore_bad asserts malformed suppression directives are
// themselves diagnostics: an ignore can never silence anything without
// naming a real analyzer and giving a reason.
package ignore_bad

//videolint:ignore // want "malformed //videolint:ignore"
func a() {}

//videolint:ignore nosuch because reasons // want "names unknown analyzer"
func b() {}

//videolint:ignore lockcheck // want "missing its reason"
func c() {}
