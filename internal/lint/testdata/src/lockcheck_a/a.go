// Package lockcheck_a reproduces the engine's known-bad lock shapes:
// the PR 8 subscriber-callback-under-write-lock bug, the PR 7
// store.Load split-critical-section race, and the blocking-operation
// catalogue.
package lockcheck_a

import (
	"os"
	"sync"
	"time"
)

type Event struct{ Seq uint64 }

// Store mirrors the engine store: a guarded map plus changelog
// subscribers.
type Store struct {
	mu   sync.RWMutex
	data map[string]int
	subs []func(Event)
	ch   chan Event
}

// notifyUnderLock is the PR 8 bug shape: invoking subscriber callbacks
// while holding the store write lock — a callback that re-enters the
// store self-deadlocks.
func (s *Store) notifyUnderLock(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, fn := range s.subs {
		fn(ev) // want "call through function value fn while s.mu is held"
	}
}

// notifyLocked is the same bug seen through the assumed-held
// convention: the *Locked suffix declares the caller holds the lock.
func (s *Store) notifyLocked(ev Event) {
	for _, fn := range s.subs {
		fn(ev) // want "call through function value fn while a caller-held lock is held"
	}
}

// loadPreFix is the PR 7 store.Load bug shape: the staleness check and
// the swap run in two critical sections, so a writer can slip between
// them and have its update silently overwritten.
func (s *Store) loadPreFix(fresh map[string]int) {
	s.mu.RLock()
	stale := len(s.data) == 0
	s.mu.RUnlock()
	if stale {
		s.mu.Lock() // want "write-locked again after an earlier release"
		s.data = fresh
		s.mu.Unlock()
	}
}

func (s *Store) sendUnderLock(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- ev // want "blocking channel send while s.mu is held"
}

func (s *Store) recvUnderLock() Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "blocking channel receive while s.mu is held"
}

func (s *Store) drainUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for ev := range s.ch { // want "blocking receive \(range over channel\)"
		_ = ev
	}
}

func (s *Store) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while s.mu is held"
	s.mu.Unlock()
}

func (s *Store) ioUnderLock(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.Remove(path) // want "file I/O \(os.Remove\) while s.mu is held"
}

func (s *Store) selectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "blocking select \(no default\)"
	case ev := <-s.ch:
		_ = ev
	}
}

// selectWithDefault is the sanctioned non-blocking wake: no finding.
func (s *Store) selectWithDefault(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- ev:
	default:
	}
}

// upgrade attempts RLock→Lock on the same RWMutex: self-deadlock.
func (s *Store) upgrade() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.data) == 0 {
		s.mu.Lock() // want "upgraded to Lock while still read-held"
		s.data = map[string]int{}
		s.mu.Unlock()
	}
}

// divergent releases on only one branch.
func (s *Store) divergent(cond bool) {
	s.mu.Lock()
	if cond { // want "lock state diverges across branches"
		s.mu.Unlock()
	}
	s.mu.Unlock()
}

// lockInLoop acquires without releasing across iterations.
func (s *Store) lockInLoop(keys []string) {
	for range keys { // want "lock state at end of loop body"
		s.mu.Lock()
	}
}

// balanced is the healthy shape: one critical section, deferred
// release, channel work outside. No findings.
func (s *Store) balanced(k string, v int, ev Event) {
	s.mu.Lock()
	s.data[k] = v
	s.mu.Unlock()
	s.ch <- ev
}
