// Package metriccheck_a reproduces the metric-convention violations:
// names off videodb_*, registration outside the single site, rogue
// expvar use, and Prometheus/expvar mirror divergence.
package metriccheck_a

import (
	"expvar"
	"fmt"
	"io"
	"sync/atomic"
)

// metrics mirrors the server counter block.
type metrics struct {
	a atomic.Uint64
	b atomic.Uint64
	c atomic.Uint64
}

func (m *metrics) record() {
	m.a.Add(1)
	m.b.Add(1)
	m.c.Add(1) // want "incremented but exposed by neither"
}

// writeProm is the single exposition site.
func (m *metrics) writeProm(w io.Writer) {
	counter := func(name string, v uint64) {
		fmt.Fprintf(w, "# HELP %s total\n# TYPE %s counter\n%s %d\n", name, name, name, v)
	}
	counter("videodb_a_total", m.a.Load())
	counter("videodb_b_total", m.b.Load()) // want "missing from the expvar mirror"
	counter("videodb_Bad_total", 0)        // want "violates the videodb_"
	counter("plain_total", 0)              // want "violates the videodb_"
}

// totals is the expvar mirror payload: it reads a but not b.
func (m *metrics) totals() map[string]uint64 {
	return map[string]uint64{"a": m.a.Load()}
}

// publish is the single mirror site.
func publish(m *metrics) {
	expvar.Publish("videodb", expvar.Func(func() interface{} { return m.totals() }))
}

// rogue registers expvar state outside the mirror site.
func rogue() { // want "expvar use in rogue"
	expvar.NewInt("videodb_rogue")
}

// rogueExpo writes exposition text outside writeProm.
func rogueExpo(w io.Writer) { // want "metric exposition in rogueExpo"
	fmt.Fprintf(w, "# TYPE videodb_dup_total counter\n")
}
