// Package core reproduces the declared engine lock hierarchy
// (subRegistry.mu → Subscription.qmu → Subscription.pendingMu, nested
// under store.Store.mu) and a violation of it. The package is named
// core so the type-level lock identities match the rank table.
package core

import "sync"

type subRegistry struct {
	mu   sync.Mutex
	subs map[uint64]*Subscription
}

type Subscription struct {
	qmu       sync.Mutex
	pendingMu sync.Mutex
	pending   []uint64
}

type DB struct {
	subs subRegistry
}

// enqueue acquires in the declared order: registry, then the
// subscription's pending queue. No finding.
func (db *DB) enqueue(s *Subscription, seq uint64) {
	db.subs.mu.Lock()
	defer db.subs.mu.Unlock()
	s.pendingMu.Lock()
	s.pending = append(s.pending, seq)
	s.pendingMu.Unlock()
}

// badOrder takes the registry lock while holding a subscription lock:
// the reverse nesting deadlocks against enqueue.
func (db *DB) badOrder(s *Subscription) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	db.subs.mu.Lock() // want "violates the declared lock hierarchy"
	db.subs.mu.Unlock()
}
