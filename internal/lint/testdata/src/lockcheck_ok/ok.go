// Package lockcheck_ok exercises the suppression facility: the sleep
// below is a finding, and the //videolint:ignore directive with its
// written reason silences it. The golden test has no want comments, so
// it passes only if suppression works.
package lockcheck_ok

import (
	"sync"
	"time"
)

type Flusher struct {
	mu sync.Mutex
}

func (f *Flusher) pace() {
	f.mu.Lock()
	defer f.mu.Unlock()
	//videolint:ignore lockcheck deliberate throttle held across the flush window; no other path takes f.mu
	time.Sleep(time.Millisecond)
}
