package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockCheck enforces the engine's lock discipline: no blocking
// operation (channel send/receive, select without default, function-
// value callback, file I/O, time.Sleep, WaitGroup/Cond wait) while a
// sync.Mutex or sync.RWMutex is held; no RLock→Lock upgrade on the
// same RWMutex; no nested acquisition that violates the declared
// hierarchy store.Store.mu → core.subRegistry.mu → core.Subscription.qmu
// → core.Subscription.pendingMu; no branch-divergent Lock/Unlock
// pairing; and no function that releases a write lock and re-acquires
// it, splitting one logical critical section in two (the PR 7
// store.Load race shape — state can change between the sections).
//
// The analysis is intra-procedural, with one extension: functions named
// *Locked or documented as running under a caller-held lock ("Caller
// holds s.mu", "Runs under the store's write lock") are analyzed with a
// synthetic held lock, so the changelog-notify class of bug — invoking
// a subscriber callback under the store write lock (PR 8) — is visible
// without whole-program call graphs. Function literals are analyzed in
// a fresh context (their execution time is unknowable locally) except
// when invoked immediately at their definition site.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "flag blocking operations, hierarchy violations, RLock→Lock upgrades, " +
		"split critical sections, and branch-divergent lock state in the engine packages",
	Scope: []string{"internal/store", "internal/store/segment", "internal/core", "internal/datalog"},
	Run:   runLockCheck,
}

// lockRanks declares the engine lock hierarchy. Keys are type-level
// "pkgname.Type.field" identities; acquisition order must be strictly
// increasing. Locks outside the table are unranked and exempt from the
// hierarchy rule (blocking-operation rules still apply).
var lockRanks = map[string]int{
	"store.Store.mu":              0,
	"core.subRegistry.mu":         1,
	"core.Subscription.qmu":       2,
	"core.Subscription.pendingMu": 3,
}

// lockHierarchyDoc renders the declared order for diagnostics.
var lockHierarchyDoc = "store.Store.mu → core.subRegistry.mu → core.Subscription.qmu → core.Subscription.pendingMu"

type lockMode int

const (
	modeRead lockMode = iota
	modeWrite
)

func (m lockMode) String() string {
	if m == modeRead {
		return "read"
	}
	return "write"
}

// heldLock is one acquisition on the current path.
type heldLock struct {
	instance string // expression identity: "s.mu", "db.subs.mu"
	class    string // type identity: "store.Store.mu" ("" if unresolvable)
	mode     lockMode
	rank     int // -1 when unranked
}

// lockState is the abstract state at one program point: the stack of
// held locks plus the set of instances released earlier on this path.
type lockState struct {
	held       []heldLock
	released   map[string]bool
	terminated bool
}

func newLockState() *lockState {
	return &lockState{released: map[string]bool{}}
}

func (st *lockState) clone() *lockState {
	c := &lockState{
		held:       append([]heldLock(nil), st.held...),
		released:   make(map[string]bool, len(st.released)),
		terminated: st.terminated,
	}
	for k := range st.released {
		c.released[k] = true
	}
	return c
}

// signature renders the held set for divergence diagnostics, e.g.
// "{s.mu(write)}".
func (st *lockState) signature() string {
	if len(st.held) == 0 {
		return "{}"
	}
	parts := make([]string, len(st.held))
	for i, h := range st.held {
		parts[i] = fmt.Sprintf("%s(%s)", h.instance, h.mode)
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}

// innermost is the most recently acquired held lock.
func (st *lockState) innermost() heldLock {
	return st.held[len(st.held)-1]
}

func (st *lockState) find(instance string) (heldLock, bool) {
	for i := len(st.held) - 1; i >= 0; i-- {
		if st.held[i].instance == instance {
			return st.held[i], true
		}
	}
	return heldLock{}, false
}

func (st *lockState) drop(instance string) bool {
	for i := len(st.held) - 1; i >= 0; i-- {
		if st.held[i].instance == instance {
			st.held = append(st.held[:i:i], st.held[i+1:]...)
			return true
		}
	}
	return false
}

// osBlockingFuncs are package-os entry points that hit the filesystem.
var osBlockingFuncs = map[string]bool{
	"os.Open": true, "os.OpenFile": true, "os.Create": true, "os.CreateTemp": true,
	"os.Remove": true, "os.RemoveAll": true, "os.Rename": true, "os.Truncate": true,
	"os.ReadFile": true, "os.WriteFile": true, "os.Mkdir": true, "os.MkdirAll": true,
	"os.ReadDir": true, "os.Stat": true, "os.Chmod": true, "os.Symlink": true,
}

// lockWalker analyzes one function body.
type lockWalker struct {
	pass     *Pass
	reported map[string]bool // dedupe: one diagnostic per (kind, lock) per function
}

func runLockCheck(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass, reported: map[string]bool{}}
			st := newLockState()
			if assumesHeldLock(fd) {
				st.held = append(st.held, heldLock{
					instance: "a caller-held lock",
					mode:     modeWrite,
					rank:     -1,
				})
			}
			w.stmt(st, fd.Body)
		}
	}
	return nil
}

// reportOnce emits at most one diagnostic per (kind, lock instance) per
// function — a method doing file I/O under a lock five times is one
// finding, not five.
func (w *lockWalker) reportOnce(pos token.Pos, kind, instance, format string, args ...interface{}) {
	key := kind + "|" + instance
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	w.pass.Reportf(pos, format, args...)
}

// lockOp classifies a call as a lock acquisition/release, returning the
// affected state transition.
type lockOp int

const (
	opNone lockOp = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockOp, ast.Expr) {
	full := funcFullName(info, call)
	var op lockOp
	switch full {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock":
		op = opLock
	case "(*sync.RWMutex).RLock":
		op = opRLock
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock":
		op = opUnlock
	case "(*sync.RWMutex).RUnlock":
		op = opRUnlock
	default:
		return opNone, nil
	}
	return op, recvOfMethodCall(call)
}

func (w *lockWalker) acquire(st *lockState, pos token.Pos, recv ast.Expr, mode lockMode) {
	instance := types.ExprString(recv)
	class := fieldPathKey(w.pass.Info, recv)
	rank := -1
	if r, ok := lockRanks[class]; ok {
		rank = r
	}
	if prev, ok := st.find(instance); ok {
		if prev.mode == modeRead && mode == modeWrite {
			w.reportOnce(pos, "upgrade", instance,
				"RLock on %s upgraded to Lock while still read-held: self-deadlock on the same RWMutex", instance)
		} else if prev.mode == modeWrite && mode == modeWrite {
			w.reportOnce(pos, "double", instance,
				"%s write-locked twice on the same path: self-deadlock", instance)
		}
	}
	if mode == modeWrite && st.released[instance] {
		w.reportOnce(pos, "split", instance,
			"%s write-locked again after an earlier release in the same function: "+
				"the critical section is split and state can change between the sections "+
				"(re-validate under the second lock, or hold one section)", instance)
	}
	if rank >= 0 {
		for _, h := range st.held {
			if h.rank >= 0 && rank <= h.rank && h.instance != instance {
				w.reportOnce(pos, "rank", instance,
					"%s acquired while %s is held: violates the declared lock hierarchy (%s)",
					instance, h.instance, lockHierarchyDoc)
			}
		}
	}
	st.held = append(st.held, heldLock{instance: instance, class: class, mode: mode, rank: rank})
}

func (w *lockWalker) release(st *lockState, recv ast.Expr) {
	instance := types.ExprString(recv)
	if st.drop(instance) {
		st.released[instance] = true
	}
}

// blockingUnderLock reports a blocking operation when any lock is held.
func (w *lockWalker) blockingUnderLock(st *lockState, kind string, pos token.Pos, what string) {
	if len(st.held) == 0 {
		return
	}
	h := st.innermost()
	w.reportOnce(pos, kind, h.instance, "%s while %s is held", what, h.instance)
}

func (w *lockWalker) stmt(st *lockState, s ast.Stmt) {
	if s == nil || st.terminated {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.List {
			w.stmt(st, inner)
		}
	case *ast.ExprStmt:
		w.expr(st, s.X)
	case *ast.SendStmt:
		w.expr(st, s.Chan)
		w.expr(st, s.Value)
		w.blockingUnderLock(st, "chan", s.Pos(), "blocking channel send")
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(st, e)
		}
		for _, e := range s.Lhs {
			w.expr(st, e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(st, e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(st, e)
		}
		st.terminated = true
	case *ast.IfStmt:
		w.stmt(st, s.Init)
		w.expr(st, s.Cond)
		thenSt := st.clone()
		w.stmt(thenSt, s.Body)
		elseSt := st.clone()
		if s.Else != nil {
			w.stmt(elseSt, s.Else)
		}
		w.merge(st, s.Pos(), thenSt, elseSt)
	case *ast.ForStmt:
		w.stmt(st, s.Init)
		w.expr(st, s.Cond)
		w.loopBody(st, s.Pos(), func(body *lockState) {
			w.stmt(body, s.Body)
			w.stmt(body, s.Post)
		})
	case *ast.RangeStmt:
		w.expr(st, s.X)
		if tv, ok := w.pass.Info.Types[s.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.blockingUnderLock(st, "chan", s.Pos(), "blocking receive (range over channel)")
			}
		}
		w.loopBody(st, s.Pos(), func(body *lockState) {
			w.stmt(body, s.Body)
		})
	case *ast.SwitchStmt:
		w.stmt(st, s.Init)
		w.expr(st, s.Tag)
		w.branches(st, s.Pos(), caseBodies(s.Body))
	case *ast.TypeSwitchStmt:
		w.stmt(st, s.Init)
		w.stmt(st, s.Assign)
		w.branches(st, s.Pos(), caseBodies(s.Body))
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.blockingUnderLock(st, "chan", s.Pos(), "blocking select (no default)")
		}
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
		w.branches(st, s.Pos(), bodies)
	case *ast.GoStmt:
		// The goroutine runs outside this critical section: analyze its
		// body in a fresh context.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmt(newLockState(), fl.Body)
		}
		for _, a := range s.Call.Args {
			w.expr(st, a)
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to the end of the body;
		// no state transition now. Deferred closures run at return with
		// the then-current state — approximate with a clone of now.
		if op, recv := classifyLockCall(w.pass.Info, s.Call); op == opUnlock || op == opRUnlock {
			_ = recv
			return
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c := st.clone()
			c.terminated = false
			w.deferredBody(c, fl.Body)
			return
		}
		for _, a := range s.Call.Args {
			w.expr(st, a)
		}
	case *ast.LabeledStmt:
		w.stmt(st, s.Stmt)
	case *ast.IncDecStmt:
		w.expr(st, s.X)
	case *ast.BranchStmt:
		// break/continue/goto: path leaves this block.
		st.terminated = true
	}
}

// deferredBody walks a deferred closure, processing unlocks (they are
// the idiom) without treating other content specially.
func (w *lockWalker) deferredBody(st *lockState, body *ast.BlockStmt) {
	w.stmt(st, body)
}

// loopBody walks a loop body and checks the held set is the same at
// loop entry and loop end — a Lock without its Unlock inside a loop
// deadlocks on the second iteration.
func (w *lockWalker) loopBody(st *lockState, pos token.Pos, walk func(*lockState)) {
	entry := st.signature()
	body := st.clone()
	walk(body)
	if !body.terminated && body.signature() != entry {
		w.reportOnce(pos, "loop", entry,
			"lock state at end of loop body (%s) differs from loop entry (%s): "+
				"unbalanced Lock/Unlock across iterations", body.signature(), entry)
	}
	if !body.terminated {
		*st = *body
	}
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

// branches walks each alternative on its own clone and merges.
func (w *lockWalker) branches(st *lockState, pos token.Pos, bodies [][]ast.Stmt) {
	if len(bodies) == 0 {
		return
	}
	states := make([]*lockState, 0, len(bodies)+1)
	for _, b := range bodies {
		c := st.clone()
		for _, inner := range b {
			w.stmt(c, inner)
		}
		states = append(states, c)
	}
	// A switch/select may match nothing: the fall-through state counts.
	states = append(states, st.clone())
	merged := states[0]
	for _, other := range states[1:] {
		w.merge(merged, pos, merged.clone(), other)
	}
	*st = *merged
}

// merge combines two branch outcomes into st, reporting when live
// branches disagree about which locks are held.
func (w *lockWalker) merge(st *lockState, pos token.Pos, a, b *lockState) {
	switch {
	case a.terminated && b.terminated:
		*st = *a
	case a.terminated:
		*st = *b
	case b.terminated:
		*st = *a
	default:
		if a.signature() != b.signature() {
			w.reportOnce(pos, "diverge", a.signature()+b.signature(),
				"lock state diverges across branches: %s vs %s — every path must "+
					"release exactly the locks it acquired", a.signature(), b.signature())
		}
		// Continue with the intersection to avoid cascading reports.
		var kept []heldLock
		for _, h := range a.held {
			if _, ok := b.find(h.instance); ok {
				kept = append(kept, h)
			}
		}
		a.held = kept
		for k := range b.released {
			a.released[k] = true
		}
		*st = *a
	}
}

// expr scans an expression tree for lock transitions and blocking
// operations.
func (w *lockWalker) expr(st *lockState, e ast.Expr) {
	if e == nil || st.terminated {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		// Immediately-invoked function literal: runs here, inherits the
		// current lock state.
		if fl, ok := ast.Unparen(e.Fun).(*ast.FuncLit); ok {
			for _, a := range e.Args {
				w.expr(st, a)
			}
			w.stmt(st, fl.Body)
			return
		}
		for _, a := range e.Args {
			w.expr(st, a)
		}
		if op, recv := classifyLockCall(w.pass.Info, e); op != opNone {
			switch op {
			case opLock:
				w.acquire(st, e.Pos(), recv, modeWrite)
			case opRLock:
				w.acquire(st, e.Pos(), recv, modeRead)
			case opUnlock, opRUnlock:
				w.release(st, recv)
			}
			return
		}
		w.checkBlockingCall(st, e)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			w.blockingUnderLock(st, "chan", e.Pos(), "blocking channel receive")
		}
		w.expr(st, e.X)
	case *ast.BinaryExpr:
		w.expr(st, e.X)
		w.expr(st, e.Y)
	case *ast.ParenExpr:
		w.expr(st, e.X)
	case *ast.SelectorExpr:
		w.expr(st, e.X)
	case *ast.IndexExpr:
		w.expr(st, e.X)
		w.expr(st, e.Index)
	case *ast.SliceExpr:
		w.expr(st, e.X)
		w.expr(st, e.Low)
		w.expr(st, e.High)
		w.expr(st, e.Max)
	case *ast.StarExpr:
		w.expr(st, e.X)
	case *ast.TypeAssertExpr:
		w.expr(st, e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(st, el)
		}
	case *ast.KeyValueExpr:
		w.expr(st, e.Value)
	case *ast.FuncLit:
		// A literal not invoked here runs at an unknown time under
		// unknown locks: analyze in a fresh context.
		w.stmt(newLockState(), e.Body)
	}
}

// checkBlockingCall flags calls that can block while a lock is held.
func (w *lockWalker) checkBlockingCall(st *lockState, call *ast.CallExpr) {
	if len(st.held) == 0 {
		return
	}
	obj := calleeObject(w.pass.Info, call)
	switch obj := obj.(type) {
	case *types.Func:
		full := obj.FullName()
		switch {
		case full == "time.Sleep":
			w.blockingUnderLock(st, "sleep", call.Pos(), "time.Sleep")
		case full == "(*sync.WaitGroup).Wait" || full == "(*sync.Cond).Wait":
			w.blockingUnderLock(st, "wait", call.Pos(), "blocking wait ("+full+")")
		case osBlockingFuncs[full] || strings.HasPrefix(full, "(*os.File)."):
			w.blockingUnderLock(st, "io", call.Pos(), "file I/O ("+full+")")
		case full == "(*bufio.Writer).Flush":
			w.blockingUnderLock(st, "io", call.Pos(), "file I/O ("+full+")")
		}
	case *types.Var:
		// Calling through a function value — a field, parameter, or
		// variable — hands control to unknown code while the lock is
		// held: the changelog subscriber-callback bug class (PR 8).
		if _, ok := obj.Type().Underlying().(*types.Signature); ok {
			h := st.innermost()
			w.reportOnce(call.Pos(), "callback", h.instance,
				"call through function value %s while %s is held: callbacks can "+
					"block or re-enter the lock (deliver outside the critical section)",
				types.ExprString(call.Fun), h.instance)
		}
	}
}
