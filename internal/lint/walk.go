package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Shared AST/type helpers for the analyzers.

// calleeObject resolves the object a call invokes: a *types.Func for
// declared functions and methods, a *types.Var for function-valued
// variables, fields, and parameters, nil for everything else
// (conversions, builtins, computed expressions).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// funcFullName returns the go/types full name of the called function —
// "(*sync.Mutex).Lock", "time.Sleep" — or "" when the call does not
// resolve to a declared function or method.
func funcFullName(info *types.Info, call *ast.CallExpr) string {
	if fn, ok := calleeObject(info, call).(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}

// recvOfMethodCall returns the receiver expression of a method call
// written as X.M(...), or nil.
func recvOfMethodCall(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// fieldPathKey renders a selector chain like s.subs.mu into a
// type-level key "pkgname.Type.field" identifying which struct field is
// being addressed. It returns "" when the expression is not a field
// selection the type-checker resolved.
func fieldPathKey(info *types.Info, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return ""
	}
	recv := selection.Recv()
	for {
		p, ok := recv.(*types.Pointer)
		if !ok {
			break
		}
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Name()
	}
	return pkg + "." + obj.Name() + "." + sel.Sel.Name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// mentionsContext reports whether any expression under n has type
// context.Context — a loop body that passes, checks, or selects on a
// context mentions one.
func mentionsContext(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		e, ok := x.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[e]; ok && tv.Type != nil && isContextType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

// assumedHeldRE matches doc comments that declare a function runs with
// a caller-held lock — the repo's documented convention for changelog
// and maintenance internals ("Caller holds s.mu", "Runs under the
// store's write lock").
var assumedHeldRE = regexp.MustCompile(`(?i)\bcallers?\s+(?:must\s+)?holds?\b|\bruns?\s+under\s+the\b[^.]*\block\b|\bwith\s+the\b[^.]*\block\s+held\b`)

// assumesHeldLock reports whether the function is documented or named
// (FooLocked) as running under a lock its caller holds.
func assumesHeldLock(fd *ast.FuncDecl) bool {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return true
	}
	return fd.Doc != nil && assumedHeldRE.MatchString(fd.Doc.Text())
}

// receiverIdent returns the name of the method's receiver, or "".
func receiverIdent(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// rootIdent returns the leftmost identifier of a selector/index chain
// (s in s.mem.adds[rel]), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
