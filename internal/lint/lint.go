// Package lint is videolint: a suite of project-specific static
// analyzers that mechanically enforce the engine invariants DESIGN.md
// states in prose — lock discipline in the store/engine packages
// (lockcheck), context propagation on request-serving paths (ctxcheck),
// the WAL/backend error-latch fail-fast contract (errlatch), and the
// videodb_* metric conventions with their Prometheus/expvar mirror
// (metriccheck).
//
// The suite is deliberately built on the standard library alone
// (go/ast, go/types, go/importer): the build environment is offline, so
// golang.org/x/tools/go/analysis is unavailable. The Analyzer/Pass API
// mirrors that package's shape closely enough that migrating onto it
// later is a rename, and cmd/videolint speaks enough of the
// unitchecker protocol to run under `go vet -vettool=`.
//
// Suppressions: a comment of the form
//
//	//videolint:ignore <analyzer> <reason>
//
// on the flagged line, or on the line directly above it, suppresses
// that analyzer's diagnostics there. The reason is mandatory — an
// ignore without one is itself a diagnostic — so every suppression in
// the tree carries a written justification.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one analysis unit, the local analogue of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// videolint:ignore directives.
	Name string
	// Doc is a one-paragraph description shown by `videolint -help`.
	Doc string
	// Scope lists import-path suffixes the analyzer applies to. Empty
	// means every package. The driver applies the scope; calling Run
	// directly (as the golden tests do) bypasses it.
	Scope []string
	// Run performs the analysis, reporting findings through the pass.
	Run func(*Pass) error
}

// AppliesTo reports whether the analyzer's scope covers the package
// with the given import path.
func (a *Analyzer) AppliesTo(path string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, suffix := range a.Scope {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with its suppression state resolved.
type Diagnostic struct {
	Analyzer   string         `json:"analyzer"`
	Pos        token.Position `json:"pos"`
	Message    string         `json:"message"`
	Suppressed bool           `json:"suppressed,omitempty"`
	// Reason is the justification given by the matching
	// videolint:ignore directive, when suppressed.
	Reason string `json:"reason,omitempty"`
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
	if d.Suppressed {
		s += fmt.Sprintf(" (suppressed: %s)", d.Reason)
	}
	return s
}

// Analyzers returns the full registered suite, in execution order.
func Analyzers() []*Analyzer {
	return []*Analyzer{LockCheck, CtxCheck, ErrLatch, MetricCheck}
}

// ignoreRE matches a videolint:ignore directive. The directive marker
// must open the comment; analyzer and reason are mandatory.
var ignoreRE = regexp.MustCompile(`^//videolint:ignore(?:\s+(\S+))?(?:\s+(.+?))?\s*$`)

// ignoreDirective is one parsed suppression comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	line     int
	pos      token.Pos
}

// collectIgnores parses every suppression directive in the file,
// reporting malformed ones (missing analyzer, missing reason, or an
// analyzer name the suite does not register) as diagnostics — an
// unexplained or dangling suppression must never silence anything.
func collectIgnores(fset *token.FileSet, f *ast.File, known map[string]bool, diags *[]Diagnostic) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, "//videolint:ignore") {
				continue
			}
			// A second "//" starts trailing commentary (the golden
			// packages put `// want` assertions there); it is not part
			// of the directive.
			text := c.Text
			if idx := strings.Index(text[2:], "//"); idx >= 0 {
				text = strings.TrimRight(text[:idx+2], " \t")
			}
			m := ignoreRE.FindStringSubmatch(text)
			bad := func(format string, args ...interface{}) {
				*diags = append(*diags, Diagnostic{
					Analyzer: "videolint",
					Pos:      fset.Position(c.Pos()),
					Message:  fmt.Sprintf(format, args...),
				})
			}
			switch {
			case m == nil || m[1] == "":
				bad("malformed //videolint:ignore: want \"//videolint:ignore <analyzer> <reason>\"")
			case !known[m[1]]:
				bad("//videolint:ignore names unknown analyzer %q", m[1])
			case m[2] == "":
				bad("//videolint:ignore %s is missing its reason: every suppression must say why", m[1])
			default:
				out = append(out, ignoreDirective{
					analyzer: m[1],
					reason:   m[2],
					line:     fset.Position(c.Pos()).Line,
					pos:      c.Pos(),
				})
			}
		}
	}
	return out
}

// applyIgnores marks diagnostics matched by a directive on their own
// line or the line directly above as suppressed.
func applyIgnores(diags []Diagnostic, ignores map[string][]ignoreDirective) {
	for i := range diags {
		d := &diags[i]
		for _, ig := range ignores[d.Pos.Filename] {
			if ig.analyzer != d.Analyzer {
				continue
			}
			if ig.line == d.Pos.Line || ig.line == d.Pos.Line-1 {
				d.Suppressed = true
				d.Reason = ig.reason
				break
			}
		}
	}
}

// Run executes every applicable analyzer over every package and returns
// all diagnostics — suppressed ones included, marked — sorted by
// position. The error aggregates analyzer failures, not findings.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	// Directive names are validated against the whole suite, not just the
	// analyzers selected for this run: a subset invocation (bench timing a
	// single pass, a future -run flag) must not flag another pass's
	// suppressions as unknown.
	known := map[string]bool{"videolint": true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	ignores := map[string][]ignoreDirective{}
	for _, pkg := range pkgs {
		// The invariants govern production code: test files are
		// type-checked with the package (vet mode hands them to us) but
		// not analyzed — tests mint contexts and split lock sections as
		// a matter of course.
		var files []*ast.File
		for _, f := range pkg.Files {
			file := pkg.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(file, "_test.go") {
				continue
			}
			files = append(files, f)
			ignores[file] = append(ignores[file], collectIgnores(pkg.Fset, f, known, &diags)...)
		}
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	applyIgnores(diags, ignores)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// Unsuppressed filters to the diagnostics that still demand attention.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}
