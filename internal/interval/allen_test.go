package interval

import "testing"

func TestClassify(t *testing.T) {
	tests := []struct {
		name string
		x, y Span
		want Relation
	}{
		{"before", Closed(0, 1), Closed(3, 4), RelBefore},
		{"after", Closed(3, 4), Closed(0, 1), RelAfter},
		{"meets half-open", ClosedOpen(0, 1), Closed(1, 2), RelMeets},
		{"meets open-closed", Closed(0, 1), OpenClosed(1, 2), RelMeets},
		{"met-by", Closed(1, 2), ClosedOpen(0, 1), RelMetBy},
		{"closed touch overlaps in a point", Closed(0, 1), Closed(1, 2), RelOverlaps},
		{"uncovered touch is before", ClosedOpen(0, 1), OpenClosed(1, 2), RelBefore},
		{"overlaps", Closed(0, 5), Closed(3, 8), RelOverlaps},
		{"overlapped-by", Closed(3, 8), Closed(0, 5), RelOverlappedBy},
		{"starts", Closed(0, 3), Closed(0, 8), RelStarts},
		{"started-by", Closed(0, 8), Closed(0, 3), RelStartedBy},
		{"starts openness differs", Open(0, 3), Closed(0, 8), RelDuring}, // (0,· starts later than [0,·
		{"during", Closed(2, 3), Closed(0, 8), RelDuring},
		{"contains", Closed(0, 8), Closed(2, 3), RelContains},
		{"finishes", Closed(5, 8), Closed(0, 8), RelFinishes},
		{"finished-by", Closed(0, 8), Closed(5, 8), RelFinishedBy},
		{"equals", Closed(1, 2), Closed(1, 2), RelEquals},
		{"equals open", Open(1, 2), Open(1, 2), RelEquals},
		{"open vs closed same bounds", Open(1, 2), Closed(1, 2), RelDuring},
		{"unbounded contains", Full(), Closed(0, 1), RelContains},
		{"two rays overlap", Above(0), Below(10), RelOverlappedBy},
		{"invalid empty", Closed(2, 1), Closed(0, 1), RelInvalid},
	}
	for _, tc := range tests {
		if got := Classify(tc.x, tc.y); got != tc.want {
			t.Errorf("%s: Classify(%v, %v) = %v, want %v", tc.name, tc.x, tc.y, got, tc.want)
		}
	}
}

func TestClassifyInverseSymmetry(t *testing.T) {
	spans := []Span{
		Closed(0, 1), Closed(0, 5), Closed(3, 8), Closed(2, 3), Open(0, 5),
		ClosedOpen(0, 1), OpenClosed(1, 2), Point(1), Above(2), Below(4), Full(),
	}
	for _, x := range spans {
		for _, y := range spans {
			r := Classify(x, y)
			if got := Classify(y, x); got != r.Inverse() {
				t.Errorf("Classify(%v,%v)=%v but Classify(%v,%v)=%v (want inverse %v)",
					x, y, r, y, x, got, r.Inverse())
			}
		}
	}
}

func TestRelationStringAndInverse(t *testing.T) {
	all := []Relation{
		RelBefore, RelMeets, RelOverlaps, RelStarts, RelDuring, RelFinishes,
		RelEquals, RelFinishedBy, RelContains, RelStartedBy, RelOverlappedBy,
		RelMetBy, RelAfter,
	}
	seen := map[string]bool{}
	for _, r := range all {
		name := r.String()
		if name == "invalid" || seen[name] {
			t.Errorf("relation %d has bad or duplicate name %q", r, name)
		}
		seen[name] = true
		if r.Inverse().Inverse() != r {
			t.Errorf("%v: double inverse is not identity", r)
		}
	}
	if RelInvalid.String() != "invalid" || Relation(200).String() != "invalid" {
		t.Error("invalid relations should stringify as invalid")
	}
	if RelInvalid.Inverse() != RelInvalid {
		t.Error("inverse of invalid should be invalid")
	}
}

func TestRelationPredicates(t *testing.T) {
	if !Before(Closed(0, 1), Closed(2, 3)) {
		t.Error("Before")
	}
	if !Meets(ClosedOpen(0, 1), Closed(1, 2)) {
		t.Error("Meets")
	}
	if !OverlapsRel(Closed(0, 5), Closed(3, 8)) {
		t.Error("OverlapsRel")
	}
	if !During(Closed(2, 3), Closed(0, 8)) {
		t.Error("During")
	}
	if !Starts(Closed(0, 3), Closed(0, 8)) {
		t.Error("Starts")
	}
	if !Finishes(Closed(5, 8), Closed(0, 8)) {
		t.Error("Finishes")
	}
	if !Equals(Closed(1, 2), Closed(1, 2)) {
		t.Error("Equals")
	}
}

func TestClassifyExactlyOneRelation(t *testing.T) {
	// Allen's relations are jointly exhaustive and pairwise disjoint: every
	// ordered pair of non-empty spans is classified by exactly one relation.
	vals := []float64{0, 1, 2, 3}
	var spans []Span
	for _, lo := range vals {
		for _, hi := range vals {
			for _, loOpen := range []bool{false, true} {
				for _, hiOpen := range []bool{false, true} {
					s := Span{Lo: lo, Hi: hi, LoOpen: loOpen, HiOpen: hiOpen}
					if !s.IsEmpty() {
						spans = append(spans, s)
					}
				}
			}
		}
	}
	for _, x := range spans {
		for _, y := range spans {
			r := Classify(x, y)
			if r == RelInvalid {
				t.Fatalf("Classify(%v,%v) = invalid for non-empty spans", x, y)
			}
			// Coherence spot checks against set semantics.
			inter := x.Intersect(y)
			switch r {
			case RelBefore, RelAfter, RelMeets, RelMetBy:
				if !inter.IsEmpty() {
					t.Errorf("%v %v %v but intersection %v non-empty", x, r, y, inter)
				}
			case RelEquals:
				if !x.Equal(y) {
					t.Errorf("%v equals %v but not Equal", x, y)
				}
			case RelDuring, RelStarts, RelFinishes:
				if !y.ContainsSpan(x) || x.Equal(y) {
					t.Errorf("%v %v %v but containment fails", x, r, y)
				}
			case RelContains, RelStartedBy, RelFinishedBy:
				if !x.ContainsSpan(y) || x.Equal(y) {
					t.Errorf("%v %v %v but containment fails", x, r, y)
				}
			case RelOverlaps, RelOverlappedBy:
				if inter.IsEmpty() || x.ContainsSpan(y) || y.ContainsSpan(x) {
					t.Errorf("%v %v %v incoherent", x, r, y)
				}
			}
		}
	}
}
