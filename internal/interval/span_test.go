package interval

import (
	"math"
	"testing"
)

func TestSpanConstructorsAndEmptiness(t *testing.T) {
	tests := []struct {
		name  string
		s     Span
		empty bool
	}{
		{"closed", Closed(0, 1), false},
		{"open", Open(0, 1), false},
		{"closed-open", ClosedOpen(0, 1), false},
		{"open-closed", OpenClosed(0, 1), false},
		{"point", Point(5), false},
		{"reversed", Closed(2, 1), true},
		{"degenerate open", Open(3, 3), true},
		{"degenerate half-open", ClosedOpen(3, 3), true},
		{"zero value", Span{}, false}, // [0,0] is the point 0
		{"above", Above(0), false},
		{"below", Below(0), false},
		{"full", Full(), false},
		{"inf point", Span{Lo: math.Inf(1), Hi: math.Inf(1)}, true},
	}
	for _, tc := range tests {
		if got := tc.s.IsEmpty(); got != tc.empty {
			t.Errorf("%s: IsEmpty() = %v, want %v", tc.name, got, tc.empty)
		}
	}
}

func TestSpanContains(t *testing.T) {
	tests := []struct {
		s    Span
		p    float64
		want bool
	}{
		{Closed(0, 10), 0, true},
		{Closed(0, 10), 10, true},
		{Closed(0, 10), 5, true},
		{Closed(0, 10), -0.001, false},
		{Closed(0, 10), 10.001, false},
		{Open(0, 10), 0, false},
		{Open(0, 10), 10, false},
		{Open(0, 10), 0.0001, true},
		{ClosedOpen(0, 10), 0, true},
		{ClosedOpen(0, 10), 10, false},
		{OpenClosed(0, 10), 0, false},
		{OpenClosed(0, 10), 10, true},
		{Point(3), 3, true},
		{Point(3), 3.0001, false},
		{Above(5), 5, false},
		{Above(5), 1e18, true},
		{AtLeast(5), 5, true},
		{Below(5), 5, false},
		{AtMost(5), 5, true},
		{Full(), 0, true},
		{Full(), math.Inf(1), false}, // infinity is not a point of the order
		{Closed(2, 1), 1.5, false},   // empty
	}
	for _, tc := range tests {
		if got := tc.s.Contains(tc.p); got != tc.want {
			t.Errorf("%v.Contains(%v) = %v, want %v", tc.s, tc.p, got, tc.want)
		}
	}
}

func TestSpanLength(t *testing.T) {
	if got := Closed(2, 5).Length(); got != 3 {
		t.Errorf("Length [2,5] = %v, want 3", got)
	}
	if got := Open(2, 5).Length(); got != 3 {
		t.Errorf("Length (2,5) = %v, want 3", got)
	}
	if got := Closed(5, 2).Length(); got != 0 {
		t.Errorf("Length of empty = %v, want 0", got)
	}
	if got := Above(0).Length(); !math.IsInf(got, 1) {
		t.Errorf("Length (0,inf) = %v, want +Inf", got)
	}
}

func TestSpanIntersect(t *testing.T) {
	tests := []struct {
		a, b, want Span
	}{
		{Closed(0, 10), Closed(5, 15), Closed(5, 10)},
		{Closed(0, 10), Closed(10, 15), Point(10)},
		{ClosedOpen(0, 10), Closed(10, 15), Closed(2, 1)}, // empty: 10 excluded from a
		{Open(0, 10), Open(5, 15), Span{Lo: 5, Hi: 10, LoOpen: true, HiOpen: true}},
		{Closed(0, 10), Open(0, 10), Open(0, 10)},
		{Closed(0, 3), Closed(7, 9), Closed(2, 1)}, // disjoint
		{Full(), Closed(1, 2), Closed(1, 2)},
		{Above(5), Below(7), Open(5, 7)},
	}
	for _, tc := range tests {
		got := tc.a.Intersect(tc.b)
		if !got.Equal(tc.want) {
			t.Errorf("%v ∩ %v = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		// Intersection is commutative.
		if rev := tc.b.Intersect(tc.a); !rev.Equal(got) {
			t.Errorf("%v ∩ %v = %v, not commutative (got %v)", tc.b, tc.a, rev, got)
		}
	}
}

func TestSpanContainsSpan(t *testing.T) {
	tests := []struct {
		a, b Span
		want bool
	}{
		{Closed(0, 10), Closed(2, 8), true},
		{Closed(0, 10), Closed(0, 10), true},
		{Closed(0, 10), Open(0, 10), true},
		{Open(0, 10), Closed(0, 10), false},
		{Open(0, 10), Open(0, 10), true},
		{Closed(0, 10), Closed(0, 11), false},
		{Closed(0, 10), Closed(2, 1), true}, // empty is contained everywhere
		{Closed(2, 1), Closed(0, 10), false},
		{Full(), Above(3), true},
		{Above(3), Full(), false},
	}
	for _, tc := range tests {
		if got := tc.a.ContainsSpan(tc.b); got != tc.want {
			t.Errorf("%v ⊇ %v = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSpanMinus(t *testing.T) {
	tests := []struct {
		name string
		a, b Span
		want []Span
	}{
		{"disjoint", Closed(0, 5), Closed(7, 9), []Span{Closed(0, 5)}},
		{"cut middle", Closed(0, 10), Closed(3, 7), []Span{ClosedOpen(0, 3), OpenClosed(7, 10)}},
		{"cut middle open hole", Closed(0, 10), Open(3, 7), []Span{Closed(0, 3), Closed(7, 10)}},
		{"trim left", Closed(0, 10), Closed(-5, 5), []Span{OpenClosed(5, 10)}},
		{"trim right", Closed(0, 10), Closed(5, 15), []Span{ClosedOpen(0, 5)}},
		{"swallowed", Closed(2, 3), Closed(0, 10), nil},
		{"remove point", Closed(0, 10), Point(5), []Span{ClosedOpen(0, 5), OpenClosed(5, 10)}},
		{"unbounded minus bounded", Full(), Closed(0, 1), []Span{Below(0), Above(1)}},
	}
	for _, tc := range tests {
		got := Closed(0, 0).Minus(Closed(1, 1)) // smoke: non-aliasing
		_ = got
		parts := tc.a.Minus(tc.b)
		if len(parts) != len(tc.want) {
			t.Errorf("%s: %v \\ %v = %v, want %v", tc.name, tc.a, tc.b, parts, tc.want)
			continue
		}
		for i := range parts {
			if !parts[i].Equal(tc.want[i]) {
				t.Errorf("%s: part %d = %v, want %v", tc.name, i, parts[i], tc.want[i])
			}
		}
	}
}

func TestSpanHull(t *testing.T) {
	if got := Closed(0, 1).Hull(Closed(5, 6)); !got.Equal(Closed(0, 6)) {
		t.Errorf("hull = %v, want [0,6]", got)
	}
	if got := (Span{Lo: 2, Hi: 1}).Hull(Closed(5, 6)); !got.Equal(Closed(5, 6)) {
		t.Errorf("hull with empty = %v, want [5,6]", got)
	}
}

func TestSpanShift(t *testing.T) {
	if got := Closed(1, 2).Shift(10); !got.Equal(Closed(11, 12)) {
		t.Errorf("shift = %v", got)
	}
	if got := Above(1).Shift(10); !got.Equal(Above(11)) {
		t.Errorf("shift unbounded = %v", got)
	}
}

func TestSpanStringAndParse(t *testing.T) {
	spans := []Span{
		Closed(0, 10), Open(-1.5, 2.25), ClosedOpen(3, 4), OpenClosed(3, 4),
		Point(7), Above(3), AtLeast(3), Below(9), AtMost(9), Full(),
	}
	for _, s := range spans {
		text := s.String()
		back, err := ParseSpan(text)
		if err != nil {
			t.Fatalf("ParseSpan(%q): %v", text, err)
		}
		if !back.Equal(s) {
			t.Errorf("round trip %q: got %v, want %v", text, back, s)
		}
	}
	if got := (Span{Lo: 2, Hi: 1}).String(); got != "∅" {
		t.Errorf("empty String = %q", got)
	}
	if s, err := ParseSpan("∅"); err != nil || !s.IsEmpty() {
		t.Errorf("ParseSpan(∅) = %v, %v", s, err)
	}
	for _, bad := range []string{"", "[1,2", "1,2]", "[a,b]", "[1;2]", "{1,2}"} {
		if _, err := ParseSpan(bad); err == nil {
			t.Errorf("ParseSpan(%q): expected error", bad)
		}
	}
}

func TestSpanEqualNormalization(t *testing.T) {
	// All empty spans are equal regardless of representation.
	empties := []Span{{Lo: 2, Hi: 1}, Open(3, 3), ClosedOpen(7, 7), {Lo: math.Inf(1), Hi: math.Inf(1)}}
	for i, a := range empties {
		for j, b := range empties {
			if !a.Equal(b) {
				t.Errorf("empty %d != empty %d", i, j)
			}
		}
	}
	// Infinite endpoints are open regardless of flags.
	a := Span{Lo: math.Inf(-1), Hi: 3}
	b := Span{Lo: math.Inf(-1), Hi: 3, LoOpen: true}
	if !a.Equal(b) {
		t.Error("(-inf,3] should equal regardless of LoOpen flag at -inf")
	}
}
