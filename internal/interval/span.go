// Package interval implements time intervals and generalized time intervals
// over a dense linear order, as defined in Section 4 of "A Database Approach
// for Modeling and Querying Video Data" (Decleir, Hacid, Kouloumdjian,
// ICDE 1999).
//
// A Span is a single interval with independently open or closed endpoints,
// possibly unbounded (±Inf endpoints are always open). A Generalized value
// is a set of pairwise non-overlapping, non-mergeable spans kept in a
// canonical normalized form, and corresponds to the paper's "generalized
// interval": the disjunction of the time intervals during which some
// described fact holds.
//
// The time domain is the dense order of the reals, represented as float64.
// Because the order is dense, two spans that merely touch at a point that
// neither covers (for example [1,2) and (2,3]) do NOT merge: the point 2 is
// missing from their union.
package interval

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Span is a single time interval with endpoints Lo..Hi. Either endpoint may
// be open (excluded) or closed (included). Unbounded spans use math.Inf
// endpoints, which are always treated as open.
//
// The zero value is the empty span.
type Span struct {
	Lo, Hi         float64
	LoOpen, HiOpen bool
}

// Closed returns the closed span [lo, hi].
func Closed(lo, hi float64) Span { return Span{Lo: lo, Hi: hi} }

// Open returns the open span (lo, hi).
func Open(lo, hi float64) Span { return Span{Lo: lo, Hi: hi, LoOpen: true, HiOpen: true} }

// ClosedOpen returns the half-open span [lo, hi).
func ClosedOpen(lo, hi float64) Span { return Span{Lo: lo, Hi: hi, HiOpen: true} }

// OpenClosed returns the half-open span (lo, hi].
func OpenClosed(lo, hi float64) Span { return Span{Lo: lo, Hi: hi, LoOpen: true} }

// Point returns the degenerate span [p, p].
func Point(p float64) Span { return Span{Lo: p, Hi: p} }

// Above returns the unbounded span (lo, +inf).
func Above(lo float64) Span {
	return Span{Lo: lo, Hi: math.Inf(1), LoOpen: true, HiOpen: true}
}

// AtLeast returns the unbounded span [lo, +inf).
func AtLeast(lo float64) Span {
	return Span{Lo: lo, Hi: math.Inf(1), HiOpen: true}
}

// Below returns the unbounded span (-inf, hi).
func Below(hi float64) Span {
	return Span{Lo: math.Inf(-1), Hi: hi, LoOpen: true, HiOpen: true}
}

// AtMost returns the unbounded span (-inf, hi].
func AtMost(hi float64) Span {
	return Span{Lo: math.Inf(-1), Hi: hi, LoOpen: true}
}

// Full returns the span covering the whole time line (-inf, +inf).
func Full() Span {
	return Span{Lo: math.Inf(-1), Hi: math.Inf(1), LoOpen: true, HiOpen: true}
}

// IsEmpty reports whether the span contains no points. NaN bounds are
// outside the dense order and make the span empty.
func (s Span) IsEmpty() bool {
	if math.IsNaN(s.Lo) || math.IsNaN(s.Hi) {
		return true
	}
	if s.Lo > s.Hi {
		return true
	}
	if s.Lo == s.Hi {
		return s.LoOpen || s.HiOpen || math.IsInf(s.Lo, 0)
	}
	return false
}

// IsPoint reports whether the span is a single point [p, p].
func (s Span) IsPoint() bool {
	return s.Lo == s.Hi && !s.LoOpen && !s.HiOpen && !math.IsInf(s.Lo, 0)
}

// IsBounded reports whether both endpoints are finite.
func (s Span) IsBounded() bool {
	return !math.IsInf(s.Lo, 0) && !math.IsInf(s.Hi, 0)
}

// Length returns Hi - Lo, the measure of the span. Openness of endpoints
// does not change the measure; unbounded spans have infinite length, and
// empty spans have length zero.
func (s Span) Length() float64 {
	if s.IsEmpty() {
		return 0
	}
	return s.Hi - s.Lo
}

// normalize canonicalizes representations of the empty span and endpoint
// openness at infinities so that Equal can compare structurally.
func (s Span) normalize() Span {
	if s.IsEmpty() {
		return Span{Lo: 1, Hi: 0} // canonical empty
	}
	if math.IsInf(s.Lo, -1) {
		s.LoOpen = true
	}
	if math.IsInf(s.Hi, 1) {
		s.HiOpen = true
	}
	return s
}

// Contains reports whether the point p lies in the span.
func (s Span) Contains(p float64) bool {
	if s.IsEmpty() || math.IsInf(p, 0) {
		return false
	}
	if p < s.Lo || (p == s.Lo && s.LoOpen) {
		return false
	}
	if p > s.Hi || (p == s.Hi && s.HiOpen) {
		return false
	}
	return true
}

// cmpLo compares the lower bounds of two spans: -1 if s starts before t,
// 0 if they start identically, +1 if s starts after t. A closed bound at
// the same value starts before an open one (it includes the endpoint).
func (s Span) cmpLo(t Span) int {
	switch {
	case s.Lo < t.Lo:
		return -1
	case s.Lo > t.Lo:
		return 1
	case s.LoOpen == t.LoOpen:
		return 0
	case !s.LoOpen:
		return -1
	default:
		return 1
	}
}

// cmpHi compares the upper bounds of two spans: -1 if s ends before t.
// An open bound at the same value ends before a closed one.
func (s Span) cmpHi(t Span) int {
	switch {
	case s.Hi < t.Hi:
		return -1
	case s.Hi > t.Hi:
		return 1
	case s.HiOpen == t.HiOpen:
		return 0
	case s.HiOpen:
		return -1
	default:
		return 1
	}
}

// Equal reports whether the two spans contain exactly the same points.
func (s Span) Equal(t Span) bool {
	s, t = s.normalize(), t.normalize()
	if s.IsEmpty() && t.IsEmpty() {
		return true
	}
	return s == t
}

// Overlaps reports whether the two spans share at least one point.
func (s Span) Overlaps(t Span) bool {
	return !s.Intersect(t).IsEmpty()
}

// ContainsSpan reports whether every point of t lies in s.
func (s Span) ContainsSpan(t Span) bool {
	if t.IsEmpty() {
		return true
	}
	if s.IsEmpty() {
		return false
	}
	return s.cmpLo(t) <= 0 && s.cmpHi(t) >= 0
}

// Intersect returns the intersection of the two spans (possibly empty).
func (s Span) Intersect(t Span) Span {
	if s.IsEmpty() || t.IsEmpty() {
		return Span{Lo: 1, Hi: 0}
	}
	r := s
	if s.cmpLo(t) < 0 {
		r.Lo, r.LoOpen = t.Lo, t.LoOpen
	}
	if s.cmpHi(t) > 0 {
		r.Hi, r.HiOpen = t.Hi, t.HiOpen
	}
	return r.normalize()
}

// mergeable reports whether the union of s and t is a single span: they
// overlap, or they are adjacent with the touching point covered by at
// least one of them.
func (s Span) mergeable(t Span) bool {
	if s.IsEmpty() || t.IsEmpty() {
		return true
	}
	if s.cmpLo(t) > 0 {
		s, t = t, s
	}
	// s starts first (or equal). They merge unless s ends strictly before
	// t begins, leaving a gap or an uncovered touching point.
	if s.Hi > t.Lo {
		return true
	}
	if s.Hi < t.Lo {
		return false
	}
	return !s.HiOpen || !t.LoOpen
}

// Hull returns the smallest single span containing both s and t.
func (s Span) Hull(t Span) Span {
	if s.IsEmpty() {
		return t.normalize()
	}
	if t.IsEmpty() {
		return s.normalize()
	}
	r := s
	if t.cmpLo(s) < 0 {
		r.Lo, r.LoOpen = t.Lo, t.LoOpen
	}
	if t.cmpHi(s) > 0 {
		r.Hi, r.HiOpen = t.Hi, t.HiOpen
	}
	return r.normalize()
}

// Minus returns the points of s not in t, as zero, one or two spans.
func (s Span) Minus(t Span) []Span {
	if s.IsEmpty() {
		return nil
	}
	x := s.Intersect(t)
	if x.IsEmpty() {
		return []Span{s.normalize()}
	}
	var out []Span
	// Left remainder: from s.Lo to x.Lo (x.Lo becomes an open/closed upper
	// bound with flipped openness).
	left := Span{Lo: s.Lo, LoOpen: s.LoOpen, Hi: x.Lo, HiOpen: !x.LoOpen}
	if !left.IsEmpty() {
		out = append(out, left.normalize())
	}
	right := Span{Lo: x.Hi, LoOpen: !x.HiOpen, Hi: s.Hi, HiOpen: s.HiOpen}
	if !right.IsEmpty() {
		out = append(out, right.normalize())
	}
	return out
}

// Shift returns the span translated by delta.
func (s Span) Shift(delta float64) Span {
	if s.IsEmpty() {
		return s.normalize()
	}
	r := s
	if !math.IsInf(r.Lo, 0) {
		r.Lo += delta
	}
	if !math.IsInf(r.Hi, 0) {
		r.Hi += delta
	}
	return r.normalize()
}

// String renders the span in standard mathematical notation, e.g. "[0,10)",
// "(3,+inf)". The empty span renders as "∅".
func (s Span) String() string {
	if s.IsEmpty() {
		return "∅"
	}
	var b strings.Builder
	if s.LoOpen {
		b.WriteByte('(')
	} else {
		b.WriteByte('[')
	}
	b.WriteString(formatBound(s.Lo))
	b.WriteByte(',')
	b.WriteString(formatBound(s.Hi))
	if s.HiOpen {
		b.WriteByte(')')
	} else {
		b.WriteByte(']')
	}
	return b.String()
}

func formatBound(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+inf"
	case math.IsInf(v, -1):
		return "-inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// ParseSpan parses the notation produced by String, e.g. "[0,10)" or
// "(-inf,3]". It rejects malformed input with a descriptive error.
func ParseSpan(s string) (Span, error) {
	t := strings.TrimSpace(s)
	if t == "∅" || t == "empty" {
		return Span{Lo: 1, Hi: 0}, nil
	}
	if len(t) < 5 {
		return Span{}, fmt.Errorf("interval: malformed span %q", s)
	}
	var sp Span
	switch t[0] {
	case '[':
	case '(':
		sp.LoOpen = true
	default:
		return Span{}, fmt.Errorf("interval: span %q must start with '[' or '('", s)
	}
	switch t[len(t)-1] {
	case ']':
	case ')':
		sp.HiOpen = true
	default:
		return Span{}, fmt.Errorf("interval: span %q must end with ']' or ')'", s)
	}
	body := t[1 : len(t)-1]
	comma := strings.IndexByte(body, ',')
	if comma < 0 {
		return Span{}, fmt.Errorf("interval: span %q missing comma", s)
	}
	lo, err := parseBound(body[:comma])
	if err != nil {
		return Span{}, fmt.Errorf("interval: span %q: %v", s, err)
	}
	hi, err := parseBound(body[comma+1:])
	if err != nil {
		return Span{}, fmt.Errorf("interval: span %q: %v", s, err)
	}
	sp.Lo, sp.Hi = lo, hi
	if sp.IsEmpty() && !(lo > hi) && lo != hi {
		return Span{}, fmt.Errorf("interval: span %q is empty", s)
	}
	return sp.normalize(), nil
}

func parseBound(s string) (float64, error) {
	switch t := strings.TrimSpace(s); t {
	case "+inf", "inf", "+∞", "∞":
		return math.Inf(1), nil
	case "-inf", "-∞":
		return math.Inf(-1), nil
	default:
		v, err := strconv.ParseFloat(t, 64)
		if err == nil && math.IsNaN(v) {
			return 0, fmt.Errorf("NaN is not a point of the dense order")
		}
		return v, err
	}
}
