package interval

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genSpan draws a random span with small integer-ish bounds so that
// adjacency and equality cases occur often.
func genSpan(r *rand.Rand) Span {
	lo := float64(r.Intn(21) - 10)
	hi := lo + float64(r.Intn(8))
	s := Span{Lo: lo, Hi: hi, LoOpen: r.Intn(2) == 0, HiOpen: r.Intn(2) == 0}
	if r.Intn(10) == 0 {
		return Span{Lo: 1, Hi: 0} // occasionally empty
	}
	return s
}

func genGeneralized(r *rand.Rand) Generalized {
	n := r.Intn(5)
	spans := make([]Span, n)
	for i := range spans {
		spans[i] = genSpan(r)
	}
	return New(spans...)
}

// quickGen is a testing/quick Generator wrapper for Generalized.
type quickGen struct{ G Generalized }

func (quickGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickGen{G: genGeneralized(r)})
}

var quickCfg = &quick.Config{MaxCount: 400}

func TestPropUnionCommutativeAssociativeIdempotent(t *testing.T) {
	f := func(a, b, c quickGen) bool {
		ab, ba := a.G.Union(b.G), b.G.Union(a.G)
		if !ab.Equal(ba) {
			return false
		}
		if !a.G.Union(a.G).Equal(a.G) {
			return false
		}
		left := a.G.Union(b.G).Union(c.G)
		right := a.G.Union(b.G.Union(c.G))
		return left.Equal(right)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropIntersectDistributesOverUnion(t *testing.T) {
	f := func(a, b, c quickGen) bool {
		left := a.G.Intersect(b.G.Union(c.G))
		right := a.G.Intersect(b.G).Union(a.G.Intersect(c.G))
		return left.Equal(right)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropMinusComplement(t *testing.T) {
	f := func(a, b quickGen) bool {
		diff := a.G.Minus(b.G)
		// diff and b are disjoint, and diff ∪ (a ∩ b) = a.
		if diff.Overlaps(b.G) {
			return false
		}
		return diff.Union(a.G.Intersect(b.G)).Equal(a.G)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropContainsGenCoherence(t *testing.T) {
	f := func(a, b quickGen) bool {
		// a ⊇ b iff a ∪ b == a iff b \ a == ∅.
		byUnion := a.G.Union(b.G).Equal(a.G)
		byMinus := b.G.Minus(a.G).IsEmpty()
		byContains := a.G.ContainsGen(b.G)
		return byUnion == byContains && byMinus == byContains
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropOverlapsCoherence(t *testing.T) {
	f := func(a, b quickGen) bool {
		return a.G.Overlaps(b.G) == !a.G.Intersect(b.G).IsEmpty() &&
			a.G.Overlaps(b.G) == b.G.Overlaps(a.G)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropNormalizationCanonical(t *testing.T) {
	// Re-normalizing the spans of a normalized interval is the identity,
	// spans are sorted, pairwise disjoint and non-mergeable.
	f := func(a quickGen) bool {
		spans := a.G.Spans()
		if !New(spans...).Equal(a.G) {
			return false
		}
		for i := 1; i < len(spans); i++ {
			if spans[i-1].cmpLo(spans[i]) >= 0 {
				return false
			}
			if spans[i-1].mergeable(spans[i]) {
				return false
			}
		}
		for _, s := range spans {
			if s.IsEmpty() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropPointMembershipMatchesOps(t *testing.T) {
	// Membership in union/intersection/difference agrees with pointwise
	// boolean algebra, sampled at half-integer grid points.
	f := func(a, b quickGen) bool {
		u, x, d := a.G.Union(b.G), a.G.Intersect(b.G), a.G.Minus(b.G)
		for p := -12.0; p <= 12; p += 0.5 {
			ina, inb := a.G.Contains(p), b.G.Contains(p)
			if u.Contains(p) != (ina || inb) {
				return false
			}
			if x.Contains(p) != (ina && inb) {
				return false
			}
			if d.Contains(p) != (ina && !inb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropParseRoundTrip(t *testing.T) {
	f := func(a quickGen) bool {
		back, err := Parse(a.G.String())
		return err == nil && back.Equal(a.G)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropDurationAdditive(t *testing.T) {
	// |a| + |b| = |a ∪ b| + |a ∩ b| for bounded intervals.
	f := func(a, b quickGen) bool {
		lhs := a.G.Duration() + b.G.Duration()
		rhs := a.G.Union(b.G).Duration() + a.G.Intersect(b.G).Duration()
		return lhs == rhs
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropAllenPartition(t *testing.T) {
	// For random non-empty spans exactly one relation holds and inversion
	// is coherent.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := genSpan(r), genSpan(r)
		if x.IsEmpty() || y.IsEmpty() {
			return true
		}
		rel := Classify(x, y)
		return rel != RelInvalid && Classify(y, x) == rel.Inverse()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
