package interval

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Generalized is a generalized time interval: a set of pairwise
// non-overlapping spans (Definition 5 of the paper). The representation is
// kept normalized — spans are sorted by lower bound, non-empty, disjoint
// and non-mergeable — so structural equality coincides with set equality
// of the underlying point sets.
//
// The zero value is the empty generalized interval.
type Generalized struct {
	spans []Span
}

// Empty returns the empty generalized interval.
func Empty() Generalized { return Generalized{} }

// New builds a normalized generalized interval from arbitrary spans:
// empty spans are dropped and overlapping or adjacent-covered spans merge.
func New(spans ...Span) Generalized {
	return Generalized{spans: normalizeSpans(spans)}
}

// FromPairs builds a generalized interval from flat (lo, hi) closed pairs;
// it panics if given an odd number of arguments. Convenient in tests.
func FromPairs(bounds ...float64) Generalized {
	if len(bounds)%2 != 0 {
		panic("interval.FromPairs: odd number of bounds")
	}
	spans := make([]Span, 0, len(bounds)/2)
	for i := 0; i < len(bounds); i += 2 {
		spans = append(spans, Closed(bounds[i], bounds[i+1]))
	}
	return New(spans...)
}

func normalizeSpans(in []Span) []Span {
	spans := make([]Span, 0, len(in))
	for _, s := range in {
		if !s.IsEmpty() {
			spans = append(spans, s.normalize())
		}
	}
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(i, j int) bool {
		if c := spans[i].cmpLo(spans[j]); c != 0 {
			return c < 0
		}
		return spans[i].cmpHi(spans[j]) < 0
	})
	out := spans[:1]
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if last.mergeable(s) {
			*last = last.Hull(s)
		} else {
			out = append(out, s)
		}
	}
	return out
}

// Spans returns the normalized spans in increasing order. The caller must
// not modify the returned slice.
func (g Generalized) Spans() []Span { return g.spans }

// NumSpans returns the number of maximal disjoint spans.
func (g Generalized) NumSpans() int { return len(g.spans) }

// IsEmpty reports whether the generalized interval contains no points.
func (g Generalized) IsEmpty() bool { return len(g.spans) == 0 }

// IsBounded reports whether the interval has finite extent on both sides.
func (g Generalized) IsBounded() bool {
	if g.IsEmpty() {
		return true
	}
	return g.spans[0].IsBounded() && g.spans[len(g.spans)-1].IsBounded()
}

// Hull returns the smallest single span covering the whole interval.
func (g Generalized) Hull() Span {
	if g.IsEmpty() {
		return Span{Lo: 1, Hi: 0}
	}
	first, last := g.spans[0], g.spans[len(g.spans)-1]
	return Span{Lo: first.Lo, LoOpen: first.LoOpen, Hi: last.Hi, HiOpen: last.HiOpen}
}

// Duration returns the total measure of the interval (the sum of span
// lengths); +Inf if any span is unbounded.
func (g Generalized) Duration() float64 {
	var d float64
	for _, s := range g.spans {
		d += s.Length()
	}
	return d
}

// Contains reports whether the point p lies in the interval. It runs in
// O(log n) time using binary search over the normalized spans.
func (g Generalized) Contains(p float64) bool {
	i := sort.Search(len(g.spans), func(i int) bool { return g.spans[i].Hi >= p })
	for ; i < len(g.spans); i++ {
		if g.spans[i].Lo > p {
			return false
		}
		if g.spans[i].Contains(p) {
			return true
		}
	}
	return false
}

// Equal reports whether the two intervals contain exactly the same points.
func (g Generalized) Equal(h Generalized) bool {
	if len(g.spans) != len(h.spans) {
		return false
	}
	for i := range g.spans {
		if !g.spans[i].Equal(h.spans[i]) {
			return false
		}
	}
	return true
}

// Union returns the set union of the two intervals. This is also the
// temporal semantics of the paper's concatenation operator ⊕ on
// generalized interval objects; see Concat.
func (g Generalized) Union(h Generalized) Generalized {
	if g.IsEmpty() {
		return h
	}
	if h.IsEmpty() {
		return g
	}
	all := make([]Span, 0, len(g.spans)+len(h.spans))
	all = append(all, g.spans...)
	all = append(all, h.spans...)
	return Generalized{spans: normalizeSpans(all)}
}

// Concat is the interpreted concatenation ⊕ of Section 6.1: the resulting
// generalized interval covers the fragments of both operands. It is
// commutative, associative and idempotent (I ⊕ I ≡ I), which underpins the
// termination of constructive rules.
func (g Generalized) Concat(h Generalized) Generalized { return g.Union(h) }

// Intersect returns the set intersection of the two intervals.
func (g Generalized) Intersect(h Generalized) Generalized {
	if g.IsEmpty() || h.IsEmpty() {
		return Generalized{}
	}
	var out []Span
	i, j := 0, 0
	for i < len(g.spans) && j < len(h.spans) {
		x := g.spans[i].Intersect(h.spans[j])
		if !x.IsEmpty() {
			out = append(out, x)
		}
		if g.spans[i].cmpHi(h.spans[j]) <= 0 {
			i++
		} else {
			j++
		}
	}
	return Generalized{spans: normalizeSpans(out)}
}

// Minus returns the points of g not in h.
func (g Generalized) Minus(h Generalized) Generalized {
	if g.IsEmpty() || h.IsEmpty() {
		return g
	}
	cur := g.spans
	for _, hs := range h.spans {
		var next []Span
		for _, cs := range cur {
			next = append(next, cs.Minus(hs)...)
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	return Generalized{spans: normalizeSpans(cur)}
}

// Overlaps reports whether the two intervals share at least one point.
func (g Generalized) Overlaps(h Generalized) bool {
	i, j := 0, 0
	for i < len(g.spans) && j < len(h.spans) {
		if g.spans[i].Overlaps(h.spans[j]) {
			return true
		}
		if g.spans[i].cmpHi(h.spans[j]) <= 0 {
			i++
		} else {
			j++
		}
	}
	return false
}

// ContainsGen reports whether g contains every point of h (h ⊆ g). This is
// exactly constraint entailment between the duration constraints the paper
// attaches to generalized intervals: duration(h) ⇒ duration(g).
func (g Generalized) ContainsGen(h Generalized) bool {
	if h.IsEmpty() {
		return true
	}
	if g.IsEmpty() {
		return false
	}
	i := 0
	for _, hs := range h.spans {
		for i < len(g.spans) && g.spans[i].cmpHi(hs) < 0 {
			i++
		}
		if i == len(g.spans) || !g.spans[i].ContainsSpan(hs) {
			return false
		}
	}
	return true
}

// Gaps returns the maximal spans lying strictly between the interval's
// fragments (empty for convex or empty intervals). The gaps of the
// generalized interval are exactly what concatenation-based virtual
// editing skips over.
func (g Generalized) Gaps() Generalized {
	if g.NumSpans() < 2 {
		return Generalized{}
	}
	return New(g.Hull()).Minus(g)
}

// Shift returns the interval translated by delta.
func (g Generalized) Shift(delta float64) Generalized {
	if delta == 0 || g.IsEmpty() {
		return g
	}
	spans := make([]Span, len(g.spans))
	for i, s := range g.spans {
		spans[i] = s.Shift(delta)
	}
	return Generalized{spans: spans} // shifting preserves normalization
}

// Clamp returns the part of the interval lying within the window w.
func (g Generalized) Clamp(w Span) Generalized {
	return g.Intersect(New(w))
}

// Min returns the infimum of the interval, or +Inf if empty.
func (g Generalized) Min() float64 {
	if g.IsEmpty() {
		return math.Inf(1)
	}
	return g.spans[0].Lo
}

// Max returns the supremum of the interval, or -Inf if empty.
func (g Generalized) Max() float64 {
	if g.IsEmpty() {
		return math.Inf(-1)
	}
	return g.spans[len(g.spans)-1].Hi
}

// String renders the interval as a ∪-separated list of spans, e.g.
// "[0,10) ∪ [20,30)". The empty interval renders as "∅".
func (g Generalized) String() string {
	if g.IsEmpty() {
		return "∅"
	}
	parts := make([]string, len(g.spans))
	for i, s := range g.spans {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ∪ ")
}

// Parse parses the notation produced by String; it also accepts "u", "U",
// "|" and "+" as union separators between spans.
func Parse(s string) (Generalized, error) {
	t := strings.TrimSpace(s)
	if t == "" || t == "∅" || t == "empty" {
		return Generalized{}, nil
	}
	var spans []Span
	rest := t
	for strings.TrimSpace(rest) != "" {
		start := strings.IndexAny(rest, "[(")
		if start < 0 {
			return Generalized{}, fmt.Errorf("interval: trailing garbage %q in %q", rest, s)
		}
		// Everything before the span must be whitespace or a separator.
		sep := strings.TrimSpace(rest[:start])
		sep = strings.TrimFunc(sep, func(r rune) bool {
			return r == 'u' || r == 'U' || r == '|' || r == '∪' || r == '+' || r == ' '
		})
		if sep != "" {
			return Generalized{}, fmt.Errorf("interval: unexpected %q in %q", sep, s)
		}
		end := strings.IndexAny(rest[start:], "])")
		if end < 0 {
			return Generalized{}, fmt.Errorf("interval: unterminated span in %q", s)
		}
		end += start
		sp, err := ParseSpan(rest[start : end+1])
		if err != nil {
			return Generalized{}, err
		}
		spans = append(spans, sp)
		rest = rest[end+1:]
	}
	return New(spans...), nil
}

// MarshalBinary encodes the interval for gob/persistence use.
func (g Generalized) MarshalBinary() ([]byte, error) {
	return []byte(g.String()), nil
}

// UnmarshalBinary decodes data produced by MarshalBinary.
func (g *Generalized) UnmarshalBinary(data []byte) error {
	parsed, err := Parse(string(data))
	if err != nil {
		return err
	}
	*g = parsed
	return nil
}

// MarshalJSON encodes the interval as a JSON string in String notation.
func (g Generalized) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", g.String())), nil
}

// UnmarshalJSON decodes a JSON string in String notation.
func (g *Generalized) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return errors.New("interval: generalized interval JSON must be a string")
	}
	parsed, err := Parse(string(data[1 : len(data)-1]))
	if err != nil {
		return err
	}
	*g = parsed
	return nil
}
