package interval

// Relation is one of Allen's thirteen qualitative relations between two
// non-empty spans. The paper's related systems (Hjelsvold & Midtstraum's
// VideoStar, OVID) expose these as interval operators; this package
// implements them as the interval-based counterpart to the paper's
// point-based constraint formulation, so the two approaches can be compared
// (experiment E8).
type Relation uint8

// The thirteen Allen relations. X rel Y reads "X rel Y", e.g. Before means
// X ends strictly before Y begins.
const (
	RelInvalid      Relation = iota
	RelBefore                // X ends before Y begins, with a gap
	RelMeets                 // X ends exactly where Y begins, no gap, no overlap
	RelOverlaps              // X begins first, they overlap, Y ends last
	RelStarts                // X and Y begin together, X ends first
	RelDuring                // X begins after and ends before Y
	RelFinishes              // X begins after Y, they end together
	RelEquals                // same span
	RelFinishedBy            // inverse of Finishes
	RelContains              // inverse of During
	RelStartedBy             // inverse of Starts
	RelOverlappedBy          // inverse of Overlaps
	RelMetBy                 // inverse of Meets
	RelAfter                 // inverse of Before
)

var relationNames = [...]string{
	RelInvalid:      "invalid",
	RelBefore:       "before",
	RelMeets:        "meets",
	RelOverlaps:     "overlaps",
	RelStarts:       "starts",
	RelDuring:       "during",
	RelFinishes:     "finishes",
	RelEquals:       "equals",
	RelFinishedBy:   "finished-by",
	RelContains:     "contains",
	RelStartedBy:    "started-by",
	RelOverlappedBy: "overlapped-by",
	RelMetBy:        "met-by",
	RelAfter:        "after",
}

// String returns the conventional lowercase name of the relation.
func (r Relation) String() string {
	if int(r) < len(relationNames) {
		return relationNames[r]
	}
	return "invalid"
}

// Inverse returns the converse relation: if Classify(x, y) == r then
// Classify(y, x) == r.Inverse().
func (r Relation) Inverse() Relation {
	switch r {
	case RelBefore:
		return RelAfter
	case RelAfter:
		return RelBefore
	case RelMeets:
		return RelMetBy
	case RelMetBy:
		return RelMeets
	case RelOverlaps:
		return RelOverlappedBy
	case RelOverlappedBy:
		return RelOverlaps
	case RelStarts:
		return RelStartedBy
	case RelStartedBy:
		return RelStarts
	case RelDuring:
		return RelContains
	case RelContains:
		return RelDuring
	case RelFinishes:
		return RelFinishedBy
	case RelFinishedBy:
		return RelFinishes
	case RelEquals:
		return RelEquals
	default:
		return RelInvalid
	}
}

// Classify returns the Allen relation holding between the non-empty spans
// x and y. Openness of endpoints is honoured over the dense order: [0,1)
// meets [1,2] (the union is seamless and they share no point), while
// [0,1] overlaps [1,2] in the single point 1. Classify returns RelInvalid
// if either span is empty.
func Classify(x, y Span) Relation {
	if x.IsEmpty() || y.IsEmpty() {
		return RelInvalid
	}
	x, y = x.normalize(), y.normalize()
	loCmp := x.cmpLo(y)
	hiCmp := x.cmpHi(y)
	switch {
	case loCmp == 0 && hiCmp == 0:
		return RelEquals
	case loCmp == 0:
		if hiCmp < 0 {
			return RelStarts
		}
		return RelStartedBy
	case hiCmp == 0:
		if loCmp > 0 {
			return RelFinishes
		}
		return RelFinishedBy
	case loCmp < 0 && hiCmp > 0:
		return RelContains
	case loCmp > 0 && hiCmp < 0:
		return RelDuring
	case loCmp < 0: // hiCmp < 0: x entirely earlier or overlapping
		return classifyDisjointOrOverlap(x, y, RelBefore, RelMeets, RelOverlaps)
	default: // loCmp > 0 && hiCmp > 0
		return classifyDisjointOrOverlap(y, x, RelAfter, RelMetBy, RelOverlappedBy)
	}
}

// classifyDisjointOrOverlap distinguishes before/meets/overlaps for spans
// where a starts and ends before b does (a.cmpLo(b) < 0, a.cmpHi(b) < 0).
// The caller supplies the relation names so the same logic serves both
// orientations.
func classifyDisjointOrOverlap(a, b Span, before, meets, overlaps Relation) Relation {
	if a.Overlaps(b) {
		return overlaps
	}
	// Disjoint: "meets" when their union is seamless (no gap and no missing
	// point), i.e. the spans are mergeable but share no point.
	if a.mergeable(b) {
		return meets
	}
	return before
}

// Before reports x before y (strictly earlier with a gap).
func Before(x, y Span) bool { return Classify(x, y) == RelBefore }

// Meets reports x meets y.
func Meets(x, y Span) bool { return Classify(x, y) == RelMeets }

// OverlapsRel reports x overlaps y in Allen's strict sense (x starts
// first, they intersect, y ends last). Use Span.Overlaps for the weaker
// "shares a point" test.
func OverlapsRel(x, y Span) bool { return Classify(x, y) == RelOverlaps }

// During reports x during y (strict containment on both sides).
func During(x, y Span) bool { return Classify(x, y) == RelDuring }

// Starts reports x starts y.
func Starts(x, y Span) bool { return Classify(x, y) == RelStarts }

// Finishes reports x finishes y.
func Finishes(x, y Span) bool { return Classify(x, y) == RelFinishes }

// Equals reports x equals y.
func Equals(x, y Span) bool { return Classify(x, y) == RelEquals }
