package interval

import (
	"encoding/json"
	"math"
	"testing"
)

func TestNewNormalizes(t *testing.T) {
	tests := []struct {
		name string
		in   []Span
		want Generalized
	}{
		{"empty", nil, Empty()},
		{"drops empty spans", []Span{Closed(2, 1), Open(3, 3)}, Empty()},
		{"sorts", []Span{Closed(10, 11), Closed(0, 1)}, FromPairs(0, 1, 10, 11)},
		{"merges overlap", []Span{Closed(0, 5), Closed(3, 8)}, FromPairs(0, 8)},
		{"merges adjacent covered", []Span{ClosedOpen(0, 5), Closed(5, 8)}, FromPairs(0, 8)},
		{"keeps uncovered touch", []Span{ClosedOpen(0, 5), OpenClosed(5, 8)},
			New(ClosedOpen(0, 5), OpenClosed(5, 8))},
		{"merge chain", []Span{Closed(0, 2), Closed(2, 4), Closed(4, 6)}, FromPairs(0, 6)},
		{"point fills hole", []Span{ClosedOpen(0, 5), Point(5), OpenClosed(5, 8)}, FromPairs(0, 8)},
		{"duplicate", []Span{Closed(1, 2), Closed(1, 2)}, FromPairs(1, 2)},
		{"nested", []Span{Closed(0, 10), Closed(2, 3)}, FromPairs(0, 10)},
	}
	for _, tc := range tests {
		got := New(tc.in...)
		if !got.Equal(tc.want) {
			t.Errorf("%s: New(%v) = %v, want %v", tc.name, tc.in, got, tc.want)
		}
	}
}

func TestGeneralizedContains(t *testing.T) {
	g := New(Closed(0, 10), Open(20, 30), Closed(40, 40))
	tests := []struct {
		p    float64
		want bool
	}{
		{0, true}, {5, true}, {10, true}, {15, false},
		{20, false}, {25, true}, {30, false},
		{40, true}, {39.999, false}, {41, false},
		{-1, false}, {1e9, false},
	}
	for _, tc := range tests {
		if got := g.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Empty().Contains(0) {
		t.Error("empty interval should contain nothing")
	}
}

func TestGeneralizedUnionIntersectMinus(t *testing.T) {
	a := FromPairs(0, 10, 20, 30)
	b := FromPairs(5, 25, 40, 50)

	if got, want := a.Union(b), FromPairs(0, 30, 40, 50); !got.Equal(want) {
		t.Errorf("union = %v, want %v", got, want)
	}
	if got, want := a.Intersect(b), FromPairs(5, 10, 20, 25); !got.Equal(want) {
		t.Errorf("intersect = %v, want %v", got, want)
	}
	if got, want := a.Minus(b), New(ClosedOpen(0, 5), OpenClosed(25, 30)); !got.Equal(want) {
		t.Errorf("minus = %v, want %v", got, want)
	}
	if got, want := b.Minus(a), New(Open(10, 20), Closed(40, 50)); !got.Equal(want) {
		t.Errorf("minus rev = %v, want %v", got, want)
	}
	// Identities with empty.
	if !a.Union(Empty()).Equal(a) || !Empty().Union(a).Equal(a) {
		t.Error("union with empty should be identity")
	}
	if !a.Intersect(Empty()).IsEmpty() {
		t.Error("intersect with empty should be empty")
	}
	if !a.Minus(Empty()).Equal(a) {
		t.Error("minus empty should be identity")
	}
	if !Empty().Minus(a).IsEmpty() {
		t.Error("empty minus anything should be empty")
	}
}

func TestGeneralizedOverlapsAndContainsGen(t *testing.T) {
	a := FromPairs(0, 10, 20, 30)
	tests := []struct {
		b                  Generalized
		overlaps, contains bool
	}{
		{FromPairs(2, 3), true, true},
		{FromPairs(2, 3, 22, 23), true, true},
		{FromPairs(2, 3, 12, 13), true, false},
		{FromPairs(12, 13), false, false},
		{FromPairs(-5, 0), true, false},   // touches endpoint 0
		{New(Open(10, 20)), false, false}, // exactly the gap
		{FromPairs(0, 10, 20, 30), true, true},
		{FromPairs(0, 30), true, false},
		{Empty(), false, true},
	}
	for _, tc := range tests {
		if got := a.Overlaps(tc.b); got != tc.overlaps {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, tc.b, got, tc.overlaps)
		}
		if got := a.ContainsGen(tc.b); got != tc.contains {
			t.Errorf("%v.ContainsGen(%v) = %v, want %v", a, tc.b, got, tc.contains)
		}
	}
	if Empty().ContainsGen(FromPairs(0, 1)) {
		t.Error("empty must not contain a non-empty interval")
	}
	if !Empty().ContainsGen(Empty()) {
		t.Error("empty contains empty")
	}
}

func TestGeneralizedConcatLaws(t *testing.T) {
	a := FromPairs(0, 10)
	b := FromPairs(20, 30)
	c := FromPairs(5, 25)

	if !a.Concat(a).Equal(a) {
		t.Error("⊕ must be idempotent: I ⊕ I ≡ I")
	}
	if !a.Concat(b).Equal(b.Concat(a)) {
		t.Error("⊕ must be commutative")
	}
	if !a.Concat(b).Concat(c).Equal(a.Concat(b.Concat(c))) {
		t.Error("⊕ must be associative")
	}
	// Absorption: (I1 ⊕ I2) ⊕ I1 = I1 ⊕ I2 (paper §6.1 termination argument).
	ab := a.Concat(b)
	if !ab.Concat(a).Equal(ab) {
		t.Error("⊕ must absorb already-included operands")
	}
}

func TestGeneralizedMetrics(t *testing.T) {
	g := FromPairs(0, 10, 20, 25)
	if got := g.Duration(); got != 15 {
		t.Errorf("Duration = %v, want 15", got)
	}
	if got := g.NumSpans(); got != 2 {
		t.Errorf("NumSpans = %v, want 2", got)
	}
	if got := g.Min(); got != 0 {
		t.Errorf("Min = %v, want 0", got)
	}
	if got := g.Max(); got != 25 {
		t.Errorf("Max = %v, want 25", got)
	}
	if got := g.Hull(); !got.Equal(Closed(0, 25)) {
		t.Errorf("Hull = %v, want [0,25]", got)
	}
	if !g.IsBounded() {
		t.Error("bounded interval reported unbounded")
	}
	if New(Above(0)).IsBounded() {
		t.Error("unbounded interval reported bounded")
	}
	if got := Empty().Min(); !math.IsInf(got, 1) {
		t.Errorf("empty Min = %v, want +Inf", got)
	}
	if got := Empty().Max(); !math.IsInf(got, -1) {
		t.Errorf("empty Max = %v, want -Inf", got)
	}
	if got := Empty().Duration(); got != 0 {
		t.Errorf("empty Duration = %v, want 0", got)
	}
}

func TestGeneralizedShiftClamp(t *testing.T) {
	g := FromPairs(0, 10, 20, 30)
	if got, want := g.Shift(100), FromPairs(100, 110, 120, 130); !got.Equal(want) {
		t.Errorf("Shift = %v, want %v", got, want)
	}
	if got, want := g.Clamp(Closed(5, 22)), FromPairs(5, 10, 20, 22); !got.Equal(want) {
		t.Errorf("Clamp = %v, want %v", got, want)
	}
	if !g.Shift(0).Equal(g) {
		t.Error("Shift(0) should be identity")
	}
}

func TestGeneralizedStringParse(t *testing.T) {
	cases := []Generalized{
		Empty(),
		FromPairs(0, 10),
		FromPairs(0, 10, 20, 30, 40, 50),
		New(Open(0, 1), ClosedOpen(2, 3), OpenClosed(4, 5)),
		New(Below(0), Closed(5, 6), Above(10)),
	}
	for _, g := range cases {
		text := g.String()
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if !back.Equal(g) {
			t.Errorf("round trip %q: got %v", text, back)
		}
	}
	// Alternative separators.
	for _, text := range []string{"[0,1] u [2,3]", "[0,1] U [2,3]", "[0,1]+[2,3]", "[0,1] | [2,3]"} {
		g, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if !g.Equal(FromPairs(0, 1, 2, 3)) {
			t.Errorf("Parse(%q) = %v", text, g)
		}
	}
	if _, err := Parse("[0,1] ∪ [bad]"); err == nil {
		t.Error("expected parse error")
	}
}

func TestGeneralizedJSONRoundTrip(t *testing.T) {
	g := New(Closed(0, 10), Open(20, 30))
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Generalized
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Errorf("JSON round trip: got %v, want %v", back, g)
	}
	if err := back.UnmarshalJSON([]byte(`42`)); err == nil {
		t.Error("expected error for non-string JSON")
	}
}

func TestGeneralizedBinaryRoundTrip(t *testing.T) {
	g := New(ClosedOpen(0, 10), Above(100))
	data, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Generalized
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Errorf("binary round trip: got %v, want %v", back, g)
	}
}

func TestFromPairsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromPairs with odd arity should panic")
		}
	}()
	FromPairs(1, 2, 3)
}

func TestGaps(t *testing.T) {
	cases := []struct {
		g, want Generalized
	}{
		{Empty(), Empty()},
		{FromPairs(0, 10), Empty()},
		{FromPairs(0, 10, 20, 30), New(Open(10, 20))},
		{FromPairs(0, 1, 2, 3, 4, 5), New(Open(1, 2), Open(3, 4))},
		{New(ClosedOpen(0, 10), OpenClosed(20, 30)), New(Closed(10, 20))},
	}
	for _, tc := range cases {
		if got := tc.g.Gaps(); !got.Equal(tc.want) {
			t.Errorf("Gaps(%v) = %v, want %v", tc.g, got, tc.want)
		}
	}
	// Gaps ∪ interval = hull; gaps ∩ interval = ∅.
	g := FromPairs(0, 5, 8, 9, 15, 20)
	if !g.Gaps().Union(g).Equal(New(g.Hull())) {
		t.Error("gaps ∪ g should equal the hull")
	}
	if g.Gaps().Overlaps(g) {
		t.Error("gaps must not overlap the interval")
	}
}
