package interval

import "testing"

// FuzzParse checks the interval notation parser never panics and that
// successful parses round-trip through String.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"[0,10)", "(0,10]", "[0,10] ∪ [20,30]", "[0,1] u (2,3)",
		"(-inf,3] | [5,+inf)", "∅", "", "[1,", "[,]", "[1,2][3,4]",
		"[1e308,2e308]", "[-0,0]", "[0.5,0.25]", "(((", "[nan,nan]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return
		}
		back, err := Parse(g.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", g.String(), src, err)
		}
		if !back.Equal(g) {
			t.Fatalf("round trip changed value: %q -> %v -> %v", src, g, back)
		}
	})
}
