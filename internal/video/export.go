package video

import (
	"fmt"
	"io"
	"strings"
)

// WriteVQL renders the sequence as a VideoQL script using the
// generalized-interval model: entities, per-object occurrence intervals,
// per-shot scene intervals, and appears_with facts. The output parses
// back with internal/parser and loads into an equivalent database.
func WriteVQL(w io.Writer, seq *Sequence) error {
	ew := &errWriter{w: w}
	ew.printf("// synthetic sequence %q: %.0fs, %d shots, %d objects\n\n",
		seq.Name, seq.Duration(), len(seq.Shots), len(seq.Objects()))
	for _, name := range seq.Objects() {
		ew.printf("object %s { name: %q }.\n", name, name)
	}
	ew.printf("\n")
	for _, name := range seq.Objects() {
		occ := seq.Occurrences[name]
		if occ.IsEmpty() {
			continue
		}
		ew.printf("interval occ_%s { duration: %s, entities: {%s}, kind: \"occurrence\" }.\n",
			name, vqlInterval(occ.String()), name)
	}
	ew.printf("\n")
	for si := range seq.Shots {
		objs := seq.ShotObjects(si)
		span := seq.ShotSpan(si)
		ew.printf("interval shot%04d { duration: %s, entities: {%s}, kind: \"shot\" }.\n",
			si, vqlInterval(span.String()), strings.Join(objs, ", "))
	}
	ew.printf("\n")
	for si := range seq.Shots {
		objs := seq.ShotObjects(si)
		for i := 0; i < len(objs); i++ {
			for j := i + 1; j < len(objs); j++ {
				ew.printf("appears_with(%s, %s, shot%04d).\n", objs[i], objs[j], si)
			}
		}
	}
	return ew.err
}

// vqlInterval converts interval String notation to VideoQL's span-union
// syntax (∪ is accepted by the parser, but "+" keeps scripts ASCII).
func vqlInterval(s string) string {
	return strings.ReplaceAll(s, " ∪ ", " + ")
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...interface{}) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}
