package video

import (
	"fmt"

	"videodb/internal/core"
	"videodb/internal/interval"
	"videodb/internal/object"
)

// Populate loads a synthetic sequence into a video database using the
// paper's model: one semantic object per entity of interest, one
// generalized interval object per entity tracing all its occurrences
// (λ1, λ2), one scene interval per shot listing the entities visible in
// it, and appears_with facts relating entities that share a shot.
func Populate(db *core.DB, seq *Sequence) error {
	for _, name := range seq.Objects() {
		if err := db.PutEntity(object.OID(name), map[string]object.Value{
			"name": object.Str(name),
		}); err != nil {
			return err
		}
	}
	// Per-object generalized intervals (the Figure 3 indexing).
	for _, name := range seq.Objects() {
		occ := seq.Occurrences[name]
		if occ.IsEmpty() {
			continue
		}
		oid := object.OID("occ_" + name)
		if err := db.PutInterval(oid, occ, map[string]object.Value{
			object.AttrEntities: object.RefSet(object.OID(name)),
			"kind":              object.Str("occurrence"),
		}); err != nil {
			return err
		}
	}
	// Scene intervals (shots) with their visible entities.
	for si := range seq.Shots {
		objs := seq.ShotObjects(si)
		oids := make([]object.OID, len(objs))
		for i, o := range objs {
			oids[i] = object.OID(o)
		}
		oid := object.OID(fmt.Sprintf("shot%04d", si))
		if err := db.PutInterval(oid, interval.New(seq.ShotSpan(si)), map[string]object.Value{
			object.AttrEntities: object.RefSet(oids...),
			"kind":              object.Str("shot"),
		}); err != nil {
			return err
		}
		// Entities sharing a shot are related pairwise.
		for i := 0; i < len(oids); i++ {
			for j := i + 1; j < len(oids); j++ {
				db.Relate("appears_with", oids[i], oids[j], oid)
			}
		}
	}
	return nil
}
