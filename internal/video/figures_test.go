package video

import (
	"testing"

	"videodb/internal/interval"
)

// These tests pin the story of each figure of Section 3 (the experiment
// index of DESIGN.md maps E1–E3 here): each scheme's characteristic
// behaviour on the same broadcast-news-like sequence.

func figureSeq(t testing.TB) *Sequence {
	t.Helper()
	return Generate(GenConfig{
		Seed: 1999, Name: "broadcast-news", DurationSec: 600,
		NumObjects: 8, AvgShotSec: 8, Presence: 0.2,
	})
}

// TestFigure1Segmentation: strict temporal partitioning yields rough
// descriptions — answers are unions of whole segments, never missing
// true occurrences but including spurious time.
func TestFigure1Segmentation(t *testing.T) {
	seq := figureSeq(t)
	seg := NewSegmentation(seq, 15)
	var spurious float64
	for _, obj := range seq.Objects() {
		truth := seq.Occurrences[obj]
		ans := seg.Occurrences(obj)
		if !ans.ContainsGen(truth) {
			t.Fatalf("%s: segmentation must not miss occurrences", obj)
		}
		spurious += ans.Minus(truth).Duration()
	}
	if spurious == 0 {
		t.Error("fixed segments aligned perfectly with ground truth — the roughness the figure illustrates is gone; the generator changed?")
	}
	// One annotation per segment, independent of content.
	if seg.Annotations() != 40 { // 600s / 15s
		t.Errorf("annotations = %d, want 40", seg.Annotations())
	}
}

// TestFigure2Stratification: per-fact annotation gives exact answers but
// one stratum per occurrence fragment.
func TestFigure2Stratification(t *testing.T) {
	seq := figureSeq(t)
	strat := NewStratification(seq)
	fragments := 0
	for _, obj := range seq.Objects() {
		truth := seq.Occurrences[obj]
		if !strat.Occurrences(obj).Equal(truth) {
			t.Fatalf("%s: stratification must be exact", obj)
		}
		fragments += truth.NumSpans()
	}
	if strat.Annotations() != fragments {
		t.Errorf("annotations = %d, want one per fragment = %d", strat.Annotations(), fragments)
	}
	if fragments <= len(seq.Objects()) {
		t.Error("sequence too tame: objects should recur in multiple fragments")
	}
}

// TestFigure3GeneralizedIntervals: a single identifier refers to all
// occurrences of an object — one annotation per object, exact answers,
// and strictly fewer annotations than stratification needs.
func TestFigure3GeneralizedIntervals(t *testing.T) {
	seq := figureSeq(t)
	gen := NewGeneralizedIndexing(seq)
	strat := NewStratification(seq)
	for _, obj := range seq.Objects() {
		if !gen.Occurrences(obj).Equal(seq.Occurrences[obj]) {
			t.Fatalf("%s: generalized indexing must be exact", obj)
		}
	}
	if gen.Annotations() != len(seq.Objects()) {
		t.Errorf("annotations = %d, want one per object = %d", gen.Annotations(), len(seq.Objects()))
	}
	if gen.Annotations() >= strat.Annotations() {
		t.Errorf("generalized (%d) should need fewer annotations than stratification (%d)",
			gen.Annotations(), strat.Annotations())
	}
	// The defining property: all occurrences through one handle, with the
	// same point set as the union of the object's strata.
	for _, obj := range seq.Objects() {
		var union interval.Generalized
		union = strat.Occurrences(obj)
		if !gen.Occurrences(obj).Equal(union) {
			t.Errorf("%s: one generalized interval ≠ union of its strata", obj)
		}
	}
}
