package video

import (
	"bytes"
	"testing"

	"videodb/internal/core"
	"videodb/internal/object"
	"videodb/internal/parser"
)

func TestWriteVQLRoundTrip(t *testing.T) {
	seq := Generate(GenConfig{Seed: 5, DurationSec: 90, NumObjects: 5})
	var buf bytes.Buffer
	if err := WriteVQL(&buf, seq); err != nil {
		t.Fatal(err)
	}
	script, err := parser.Parse(buf.String())
	if err != nil {
		t.Fatalf("exported script does not parse: %v\n%s", err, buf.String())
	}

	// The parsed script loads into a database equivalent to Populate's.
	fromScript := core.New()
	if err := script.Apply(fromScript.Store()); err != nil {
		t.Fatal(err)
	}
	fromAPI := core.New()
	if err := Populate(fromAPI, seq); err != nil {
		t.Fatal(err)
	}

	a, b := fromScript.Store(), fromAPI.Store()
	if a.Len() != b.Len() {
		t.Fatalf("object counts differ: %d vs %d", a.Len(), b.Len())
	}
	for _, oid := range b.OIDs() {
		x, y := a.Get(oid), b.Get(oid)
		if x == nil {
			t.Fatalf("missing %s in script-loaded store", oid)
		}
		// Durations and entities must match exactly; the textual round
		// trip must not perturb interval bounds.
		if !x.Duration().Equal(y.Duration()) {
			t.Errorf("%s: duration %v vs %v", oid, x.Duration(), y.Duration())
		}
		if !x.Attr(object.AttrEntities).Equal(y.Attr(object.AttrEntities)) {
			t.Errorf("%s: entities differ", oid)
		}
	}
	// Facts survive.
	if len(a.Facts("appears_with")) != len(b.Facts("appears_with")) {
		t.Errorf("appears_with: %d vs %d facts",
			len(a.Facts("appears_with")), len(b.Facts("appears_with")))
	}
}

func TestWriteVQLPropagatesWriteErrors(t *testing.T) {
	seq := Generate(GenConfig{Seed: 5, DurationSec: 30, NumObjects: 2})
	w := &failWriter{failAfter: 10}
	if err := WriteVQL(w, seq); err == nil {
		t.Error("expected write error")
	}
}

type failWriter struct {
	n         int
	failAfter int
}

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > f.failAfter {
		return 0, bytes.ErrTooLarge
	}
	return len(p), nil
}
