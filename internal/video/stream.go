package video

import (
	"fmt"
	"strings"
)

// StreamBatches renders the sequence as an ordered series of VideoQL
// script batches for live replay: batch 0 declares the semantic objects
// (the prologue an annotator writes before the broadcast starts), and
// each following batch is one shot — its scene interval plus the
// appears_with facts it induces — in timeline order. Posting the batches
// to a running server's /v1/script reproduces the ingest pattern the
// paper's TV-news scenario implies: annotations arrive shot by shot
// while standing queries watch.
//
// Per-object occurrence intervals are deliberately omitted: they union
// spans from the whole timeline, so they are only known once the
// sequence ends (WriteVQL emits them for batch loads).
func StreamBatches(seq *Sequence) []string {
	batches := make([]string, 0, len(seq.Shots)+1)

	var b strings.Builder
	fmt.Fprintf(&b, "// streaming replay of %q: %d shots\n", seq.Name, len(seq.Shots))
	for _, name := range seq.Objects() {
		fmt.Fprintf(&b, "object %s { name: %q }.\n", name, name)
	}
	batches = append(batches, b.String())

	for si := range seq.Shots {
		b.Reset()
		objs := seq.ShotObjects(si)
		span := seq.ShotSpan(si)
		fmt.Fprintf(&b, "interval shot%04d { duration: %s, entities: {%s}, kind: \"shot\" }.\n",
			si, vqlInterval(span.String()), strings.Join(objs, ", "))
		for i := 0; i < len(objs); i++ {
			for j := i + 1; j < len(objs); j++ {
				fmt.Fprintf(&b, "appears_with(%s, %s, shot%04d).\n", objs[i], objs[j], si)
			}
		}
		batches = append(batches, b.String())
	}
	return batches
}
