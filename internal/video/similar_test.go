package video

import "testing"

func TestSimilarShots(t *testing.T) {
	seq := Generate(GenConfig{Seed: 21, DurationSec: 200, NumObjects: 3})
	if len(seq.Shots) < 5 {
		t.Fatalf("need several shots, got %d", len(seq.Shots))
	}

	// Querying with a shot's own signature ranks it first with ~zero
	// distance.
	for shot := 0; shot < 5; shot++ {
		matches := seq.SimilarShots(seq.ShotSignature(shot), 3)
		if len(matches) != 3 {
			t.Fatalf("k=3 returned %d", len(matches))
		}
		if matches[0].Shot != shot {
			t.Errorf("shot %d: best match = %d (distance %g)", shot, matches[0].Shot, matches[0].Distance)
		}
		if matches[0].Distance > 0.05 {
			t.Errorf("self distance = %g", matches[0].Distance)
		}
		// Distances ascend.
		for i := 1; i < len(matches); i++ {
			if matches[i].Distance < matches[i-1].Distance {
				t.Errorf("ranking not sorted: %v", matches)
			}
		}
	}

	// k handling.
	if got := seq.SimilarShots(seq.ShotSignature(0), 0); len(got) != len(seq.Shots) {
		t.Errorf("k=0 should return all shots, got %d", len(got))
	}
	if got := seq.SimilarShots(seq.ShotSignature(0), 10_000); len(got) != len(seq.Shots) {
		t.Errorf("huge k should clamp, got %d", len(got))
	}
}

func TestQueryByExample(t *testing.T) {
	seq := Generate(GenConfig{Seed: 22, DurationSec: 120, NumObjects: 2})
	midShot := len(seq.Shots) / 2
	frame := seq.Shots[midShot].Start + 1
	matches := seq.QueryByExample(frame, 1)
	if len(matches) != 1 || matches[0].Shot != midShot {
		t.Errorf("QueryByExample = %v, want shot %d", matches, midShot)
	}
	if seq.QueryByExample(-1, 3) != nil || seq.QueryByExample(len(seq.Frames), 3) != nil {
		t.Error("out-of-range frames should return nil")
	}
}

func TestShotSignatureStability(t *testing.T) {
	// Within-shot signatures are much closer to their own shot's frames
	// than to other shots' signatures (that is what makes detection and
	// retrieval work).
	seq := Generate(GenConfig{Seed: 23, DurationSec: 120, NumObjects: 2})
	a, b := seq.ShotSignature(0), seq.ShotSignature(1)
	frame := seq.Frames[seq.Shots[0].Start]
	dOwn := HistogramDistance(frame.Histogram, a)
	dOther := HistogramDistance(frame.Histogram, b)
	if dOwn >= dOther {
		t.Errorf("frame closer to foreign shot: own %g vs other %g", dOwn, dOther)
	}
}
