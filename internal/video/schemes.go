package video

import (
	"videodb/internal/interval"
)

// Indexer is a video content-indexing scheme: it ingests a sequence's
// annotations and answers the canonical retrieval query of Section 3,
// "all periods during which object X is on screen".
type Indexer interface {
	// Name identifies the scheme.
	Name() string
	// Occurrences answers the retrieval query from the scheme's own data.
	Occurrences(obj string) interval.Generalized
	// Annotations is the number of annotation records the scheme stores.
	Annotations() int
	// StorageBytes approximates the scheme's annotation storage cost.
	StorageBytes() int
}

// --- Figure 1: segmentation ----------------------------------------------------

// Segmentation implements the historical scheme of Figure 1: the
// timeline is partitioned into independent contiguous segments (here of
// fixed length), each annotated with a handwritten description — the
// objects visible anywhere within it. Its weakness, per Aguierre-Smith
// and Davenport's critique quoted in Section 3, is that the strict
// temporal partitioning yields rough descriptions: a query answer is the
// union of whole segments, an over-approximation of the true occurrence
// set.
type Segmentation struct {
	segments []segment
}

type segment struct {
	span    interval.Span
	objects map[string]bool
}

// NewSegmentation indexes the sequence with fixed-length segments of the
// given duration (seconds).
func NewSegmentation(seq *Sequence, segmentSec float64) *Segmentation {
	s := &Segmentation{}
	total := seq.Duration()
	for at := 0.0; at < total; at += segmentSec {
		end := at + segmentSec
		if end > total {
			end = total
		}
		seg := segment{span: interval.ClosedOpen(at, end), objects: make(map[string]bool)}
		window := interval.New(seg.span)
		for obj, occ := range seq.Occurrences {
			if occ.Overlaps(window) {
				seg.objects[obj] = true
			}
		}
		s.segments = append(s.segments, seg)
	}
	return s
}

// Name implements Indexer.
func (s *Segmentation) Name() string { return "segmentation" }

// Occurrences implements Indexer: the union of every segment whose
// description mentions the object.
func (s *Segmentation) Occurrences(obj string) interval.Generalized {
	var spans []interval.Span
	for _, seg := range s.segments {
		if seg.objects[obj] {
			spans = append(spans, seg.span)
		}
	}
	return interval.New(spans...)
}

// Annotations implements Indexer: one record per segment.
func (s *Segmentation) Annotations() int { return len(s.segments) }

// StorageBytes implements Indexer.
func (s *Segmentation) StorageBytes() int {
	bytes := 0
	for _, seg := range s.segments {
		bytes += spanBytes
		for obj := range seg.objects {
			bytes += len(obj)
		}
	}
	return bytes
}

// --- Figure 2: stratification ---------------------------------------------------

// Stratification implements the scheme of Figure 2: each element of
// interest is annotated individually with a single contiguous temporal
// descriptor (a stratum), so descriptions may overlap freely. An object
// visible during k disjoint stretches needs k strata; retrieving all its
// occurrences means collecting all of them.
type Stratification struct {
	strata []stratum
}

type stratum struct {
	object string
	span   interval.Span
}

// NewStratification indexes the sequence with one stratum per maximal
// contiguous occurrence of each object.
func NewStratification(seq *Sequence) *Stratification {
	s := &Stratification{}
	for obj, occ := range seq.Occurrences {
		for _, span := range occ.Spans() {
			s.strata = append(s.strata, stratum{object: obj, span: span})
		}
	}
	return s
}

// Name implements Indexer.
func (s *Stratification) Name() string { return "stratification" }

// Occurrences implements Indexer: scan and collect the object's strata
// (the scheme has one annotation per occurrence, not per object, so the
// scan is over all strata).
func (s *Stratification) Occurrences(obj string) interval.Generalized {
	var spans []interval.Span
	for _, st := range s.strata {
		if st.object == obj {
			spans = append(spans, st.span)
		}
	}
	return interval.New(spans...)
}

// Annotations implements Indexer: one record per stratum.
func (s *Stratification) Annotations() int { return len(s.strata) }

// StorageBytes implements Indexer.
func (s *Stratification) StorageBytes() int {
	bytes := 0
	for _, st := range s.strata {
		bytes += spanBytes + len(st.object)
	}
	return bytes
}

// --- Figure 3: generalized intervals ---------------------------------------------

// GeneralizedIndexing implements the paper's scheme (Figure 3): each
// object of interest is associated with a single generalized interval
// tracing all its occurrences, so one identifier refers to every
// occurrence and retrieval is a single lookup.
type GeneralizedIndexing struct {
	byObject map[string]interval.Generalized
}

// NewGeneralizedIndexing indexes the sequence with one generalized
// interval per object.
func NewGeneralizedIndexing(seq *Sequence) *GeneralizedIndexing {
	g := &GeneralizedIndexing{byObject: make(map[string]interval.Generalized, len(seq.Occurrences))}
	for obj, occ := range seq.Occurrences {
		g.byObject[obj] = occ
	}
	return g
}

// Name implements Indexer.
func (g *GeneralizedIndexing) Name() string { return "generalized-interval" }

// Occurrences implements Indexer: a single map lookup.
func (g *GeneralizedIndexing) Occurrences(obj string) interval.Generalized {
	return g.byObject[obj]
}

// Annotations implements Indexer: one record per object.
func (g *GeneralizedIndexing) Annotations() int { return len(g.byObject) }

// StorageBytes implements Indexer.
func (g *GeneralizedIndexing) StorageBytes() int {
	bytes := 0
	for obj, occ := range g.byObject {
		bytes += len(obj) + spanBytes*occ.NumSpans()
	}
	return bytes
}

// spanBytes approximates the storage of one time span (two float64
// bounds plus openness flags).
const spanBytes = 18

// --- Answer quality ---------------------------------------------------------------

// AnswerQuality measures a scheme's answer for one object against the
// ground truth: precision is the fraction of the returned time that the
// object is really on screen, recall the fraction of true screen time
// returned.
func AnswerQuality(answer, truth interval.Generalized) (precision, recall float64) {
	inter := answer.Intersect(truth).Duration()
	if d := answer.Duration(); d > 0 {
		precision = inter / d
	} else if truth.IsEmpty() {
		precision = 1
	}
	if d := truth.Duration(); d > 0 {
		recall = inter / d
	} else {
		recall = 1
	}
	return precision, recall
}
