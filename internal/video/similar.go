package video

import "sort"

// Query by visual example over the machine-derived index (Section 5.1's
// "raw features", in the style of the QBIC/VIOLONE systems the paper
// surveys): shots are summarized by their mean color histogram and
// ranked by histogram distance to an example.

// ShotSignature is the mean histogram of a shot's frames.
func (s *Sequence) ShotSignature(shot int) [HistogramBins]float64 {
	var sig [HistogramBins]float64
	sh := s.Shots[shot]
	n := float64(sh.End - sh.Start)
	if n == 0 {
		return sig
	}
	for f := sh.Start; f < sh.End; f++ {
		for i, v := range s.Frames[f].Histogram {
			sig[i] += v
		}
	}
	for i := range sig {
		sig[i] /= n
	}
	return sig
}

// ShotMatch is one ranked result of SimilarShots.
type ShotMatch struct {
	Shot     int
	Distance float64
}

// SimilarShots ranks all shots by histogram distance to the example
// signature and returns the k closest (all shots if k ≤ 0 or exceeds the
// shot count). Ties break toward earlier shots, so results are
// deterministic.
func (s *Sequence) SimilarShots(example [HistogramBins]float64, k int) []ShotMatch {
	matches := make([]ShotMatch, len(s.Shots))
	for i := range s.Shots {
		matches[i] = ShotMatch{Shot: i, Distance: HistogramDistance(s.ShotSignature(i), example)}
	}
	sort.SliceStable(matches, func(i, j int) bool { return matches[i].Distance < matches[j].Distance })
	if k > 0 && k < len(matches) {
		matches = matches[:k]
	}
	return matches
}

// QueryByExample finds the k shots most similar to the shot containing
// the given frame (the frame's own shot ranks first, distance ≈ 0).
func (s *Sequence) QueryByExample(frame int, k int) []ShotMatch {
	if frame < 0 || frame >= len(s.Frames) {
		return nil
	}
	for i, sh := range s.Shots {
		if frame >= sh.Start && frame < sh.End {
			return s.SimilarShots(s.ShotSignature(i), k)
		}
	}
	return nil
}
