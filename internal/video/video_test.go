package video

import (
	"testing"

	"videodb/internal/core"
	"videodb/internal/interval"
	"videodb/internal/object"
)

func testSeq(t testing.TB) *Sequence {
	t.Helper()
	return Generate(GenConfig{Seed: 7, DurationSec: 120, NumObjects: 6})
}

func TestGenerateStructure(t *testing.T) {
	seq := testSeq(t)
	if seq.Duration() != 120 {
		t.Errorf("Duration = %v", seq.Duration())
	}
	if len(seq.Frames) != 120*25 {
		t.Errorf("frames = %d", len(seq.Frames))
	}
	if len(seq.Shots) < 10 {
		t.Errorf("shots = %d, expected a reasonable cut rate", len(seq.Shots))
	}
	// Shots tile the frame range exactly.
	at := 0
	for _, sh := range seq.Shots {
		if sh.Start != at || sh.End <= sh.Start {
			t.Fatalf("shot %+v does not tile at %d", sh, at)
		}
		at = sh.End
	}
	if at != len(seq.Frames) {
		t.Errorf("shots end at %d, want %d", at, len(seq.Frames))
	}
	if len(seq.Objects()) != 6 {
		t.Errorf("objects = %v", seq.Objects())
	}
	// Occurrences stay within the sequence and are shot-aligned unions.
	whole := interval.New(interval.ClosedOpen(0, seq.Duration()))
	for obj, occ := range seq.Occurrences {
		if !whole.ContainsGen(occ) {
			t.Errorf("%s occurrences %v escape the timeline", obj, occ)
		}
	}
	// Determinism.
	seq2 := Generate(GenConfig{Seed: 7, DurationSec: 120, NumObjects: 6})
	for obj := range seq.Occurrences {
		if !seq.Occurrences[obj].Equal(seq2.Occurrences[obj]) {
			t.Errorf("generation not deterministic for %s", obj)
		}
	}
	// Different seeds should (almost surely) produce different content.
	other := Generate(GenConfig{Seed: 8, DurationSec: 120, NumObjects: 6})
	if other.Occurrences["obj000"].Equal(seq.Occurrences["obj000"]) &&
		!seq.Occurrences["obj000"].IsEmpty() {
		t.Error("different seeds produced identical occurrences")
	}
}

func TestShotDetection(t *testing.T) {
	seq := testSeq(t)
	detected := DetectShots(seq.Frames, DefaultCutThreshold)
	precision, recall := ShotDetectionAccuracy(detected, seq.Shots)
	if precision < 0.95 || recall < 0.95 {
		t.Errorf("shot detection precision=%v recall=%v", precision, recall)
	}
	if got := DetectShots(nil, DefaultCutThreshold); got != nil {
		t.Error("no frames, no shots")
	}
	one := DetectShots(seq.Frames[:10], DefaultCutThreshold)
	if len(one) != 1 {
		t.Errorf("a within-shot clip should be one shot, got %v", one)
	}
	// Degenerate threshold: everything is a cut.
	all := DetectShots(seq.Frames[:50], 0)
	if len(all) < 25 {
		t.Errorf("zero threshold should over-segment, got %d shots", len(all))
	}
}

func TestSchemesAnswerQuality(t *testing.T) {
	seq := testSeq(t)
	strat := NewStratification(seq)
	gen := NewGeneralizedIndexing(seq)
	segFine := NewSegmentation(seq, 1)
	segCoarse := NewSegmentation(seq, 30)

	for _, obj := range seq.Objects() {
		truth := seq.Occurrences[obj]

		// Stratification and generalized indexing are exact.
		if !strat.Occurrences(obj).Equal(truth) {
			t.Errorf("stratification inexact for %s", obj)
		}
		if !gen.Occurrences(obj).Equal(truth) {
			t.Errorf("generalized indexing inexact for %s", obj)
		}

		// Segmentation over-approximates: recall 1, precision ≤ 1, and
		// coarser segments are never more precise.
		for _, seg := range []*Segmentation{segFine, segCoarse} {
			ans := seg.Occurrences(obj)
			if !ans.ContainsGen(truth) {
				t.Errorf("%s: segmentation missed true occurrences of %s", seg.Name(), obj)
			}
			p, r := AnswerQuality(ans, truth)
			if r != 1 {
				t.Errorf("segmentation recall = %v", r)
			}
			if p > 1.0001 {
				t.Errorf("precision = %v > 1", p)
			}
		}
		pFine, _ := AnswerQuality(segFine.Occurrences(obj), truth)
		pCoarse, _ := AnswerQuality(segCoarse.Occurrences(obj), truth)
		if !truth.IsEmpty() && pCoarse > pFine+1e-9 {
			t.Errorf("%s: coarse segmentation more precise (%v) than fine (%v)", obj, pCoarse, pFine)
		}
	}
}

func TestSchemesAnnotationCounts(t *testing.T) {
	seq := testSeq(t)
	gen := NewGeneralizedIndexing(seq)
	strat := NewStratification(seq)
	seg := NewSegmentation(seq, 5)

	// Figure 3's point: one annotation per object.
	if gen.Annotations() != len(seq.Objects()) {
		t.Errorf("generalized annotations = %d, want %d", gen.Annotations(), len(seq.Objects()))
	}
	// Stratification: one per fragment — at least one per object with
	// occurrences, normally many more.
	totalFragments := 0
	for _, occ := range seq.Occurrences {
		totalFragments += occ.NumSpans()
	}
	if strat.Annotations() != totalFragments {
		t.Errorf("strata = %d, want %d", strat.Annotations(), totalFragments)
	}
	if strat.Annotations() <= gen.Annotations() {
		t.Errorf("stratification (%d) should need more annotations than generalized (%d)",
			strat.Annotations(), gen.Annotations())
	}
	if seg.Annotations() != 24 { // 120s / 5s
		t.Errorf("segments = %d", seg.Annotations())
	}
	for _, idx := range []Indexer{gen, strat, seg} {
		if idx.StorageBytes() <= 0 {
			t.Errorf("%s: storage bytes = %d", idx.Name(), idx.StorageBytes())
		}
		if idx.Name() == "" {
			t.Error("empty scheme name")
		}
	}
}

func TestAnswerQualityEdgeCases(t *testing.T) {
	empty := interval.Empty()
	some := interval.FromPairs(0, 10)
	if p, r := AnswerQuality(empty, empty); p != 1 || r != 1 {
		t.Errorf("empty/empty = %v, %v", p, r)
	}
	if p, r := AnswerQuality(empty, some); p != 0 || r != 0 {
		t.Errorf("empty answer = %v, %v", p, r)
	}
	if p, r := AnswerQuality(some, empty); p != 0 || r != 1 {
		t.Errorf("spurious answer = %v, %v", p, r)
	}
	if p, r := AnswerQuality(some, some); p != 1 || r != 1 {
		t.Errorf("exact answer = %v, %v", p, r)
	}
}

func TestPopulateAndQuery(t *testing.T) {
	seq := Generate(GenConfig{Seed: 3, DurationSec: 60, NumObjects: 4})
	db := core.New()
	if err := Populate(db, seq); err != nil {
		t.Fatal(err)
	}
	// Every object with occurrences has its occurrence interval, and its
	// duration matches ground truth.
	for _, name := range seq.Objects() {
		truth := seq.Occurrences[name]
		o := db.Object(object.OID("occ_" + name))
		if truth.IsEmpty() {
			if o != nil {
				t.Errorf("%s: unexpected occurrence object", name)
			}
			continue
		}
		if o == nil {
			t.Fatalf("%s: missing occurrence object", name)
		}
		if !o.Duration().Equal(truth) {
			t.Errorf("%s: duration %v != truth %v", name, o.Duration(), truth)
		}
	}
	// The canonical retrieval query runs through VideoQL.
	rs, err := db.Query("?- Interval(G), obj000 in G.entities.")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) == 0 {
		t.Error("obj000 should appear somewhere")
	}
	// appears_with facts are queryable.
	rs, err = db.Query("?- appears_with(X, Y, S).")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) == 0 {
		t.Error("expected appears_with facts")
	}
}
