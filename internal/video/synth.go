// Package video is the video substrate the paper assumes: sequences of
// frames with machine-derived indices (shot-change detection over color
// histograms, Section 5.1's "machine derived indices") and the three
// content-indexing schemes of Section 3 — segmentation (Figure 1),
// stratification (Figure 2) and generalized-interval indexing (Figure 3).
//
// The paper's motivating data (TV-news archives) is proprietary, so this
// package generates synthetic sequences with the same structure: shots
// with stable per-shot color signatures, and semantic objects that appear
// and disappear across non-contiguous stretches of the timeline. The
// indexing schemes and the query engine see exactly the shape of data
// real annotated footage produces.
package video

import (
	"fmt"
	"math/rand"

	"videodb/internal/interval"
)

// HistogramBins is the number of bins in the simulated color histogram.
const HistogramBins = 16

// Frame is one video frame's machine-derived signature.
type Frame struct {
	Index     int
	Histogram [HistogramBins]float64 // normalized color histogram
}

// Shot is a contiguous run of frames with a stable visual signature.
type Shot struct {
	Start, End int // frame indexes, inclusive start, exclusive end
}

// Sequence is a synthetic video sequence: frames, ground-truth shots and
// ground-truth on-screen occurrences of each semantic object, in seconds.
type Sequence struct {
	Name   string
	FPS    float64
	Frames []Frame
	Shots  []Shot
	// Occurrences maps each object name to the exact set of instants it
	// is on screen.
	Occurrences map[string]interval.Generalized
	// shotObjects lists the objects visible in each shot (parallel to
	// Shots); the annotation schemes consume it.
	shotObjects [][]string
}

// Duration returns the sequence length in seconds.
func (s *Sequence) Duration() float64 { return float64(len(s.Frames)) / s.FPS }

// ShotSpan returns the time span of the i-th shot in seconds.
func (s *Sequence) ShotSpan(i int) interval.Span {
	sh := s.Shots[i]
	return interval.ClosedOpen(float64(sh.Start)/s.FPS, float64(sh.End)/s.FPS)
}

// ShotObjects returns the objects visible in the i-th shot.
func (s *Sequence) ShotObjects(i int) []string { return s.shotObjects[i] }

// Objects returns the object names in a stable order.
func (s *Sequence) Objects() []string {
	out := make([]string, 0, len(s.Occurrences))
	for i := 0; i < len(s.Occurrences); i++ {
		out = append(out, objectName(i))
	}
	return out
}

func objectName(i int) string { return fmt.Sprintf("obj%03d", i) }

// GenConfig parameterizes the synthetic sequence generator.
type GenConfig struct {
	Seed        int64
	Name        string
	FPS         float64 // frames per second (default 25)
	DurationSec float64 // total length (default 600)
	NumObjects  int     // semantic objects (default 10)
	AvgShotSec  float64 // mean shot length (default 6)
	// Presence is the probability an object is visible in any given shot
	// (default 0.25); it controls how fragmented each object's
	// generalized interval is.
	Presence float64
	// Noise is the per-frame histogram jitter within a shot (default
	// 0.004); shot changes move the histogram by an order of magnitude
	// more, so detection with the default threshold is reliable.
	Noise float64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.FPS == 0 {
		c.FPS = 25
	}
	if c.DurationSec == 0 {
		c.DurationSec = 600
	}
	if c.NumObjects == 0 {
		c.NumObjects = 10
	}
	if c.AvgShotSec == 0 {
		c.AvgShotSec = 6
	}
	if c.Presence == 0 {
		c.Presence = 0.25
	}
	if c.Noise == 0 {
		c.Noise = 0.004
	}
	if c.Name == "" {
		c.Name = "synthetic"
	}
	return c
}

// Generate builds a synthetic sequence.
func Generate(cfg GenConfig) *Sequence {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	totalFrames := int(cfg.DurationSec * cfg.FPS)
	seq := &Sequence{
		Name:        cfg.Name,
		FPS:         cfg.FPS,
		Occurrences: make(map[string]interval.Generalized, cfg.NumObjects),
	}

	// Cut the timeline into shots with exponential-ish lengths.
	for at := 0; at < totalFrames; {
		n := int(cfg.AvgShotSec * cfg.FPS * (0.5 + r.Float64()))
		if n < 2 {
			n = 2
		}
		end := at + n
		if end > totalFrames {
			end = totalFrames
		}
		seq.Shots = append(seq.Shots, Shot{Start: at, End: end})
		at = end
	}

	// Per-shot base histogram plus per-frame noise.
	seq.Frames = make([]Frame, totalFrames)
	for _, sh := range seq.Shots {
		var base [HistogramBins]float64
		var sum float64
		for i := range base {
			base[i] = r.Float64()
			sum += base[i]
		}
		for i := range base {
			base[i] /= sum
		}
		for f := sh.Start; f < sh.End; f++ {
			frame := Frame{Index: f, Histogram: base}
			for i := range frame.Histogram {
				frame.Histogram[i] += (r.Float64() - 0.5) * cfg.Noise
				if frame.Histogram[i] < 0 {
					frame.Histogram[i] = 0
				}
			}
			seq.Frames[f] = frame
		}
	}

	// Assign objects to shots; occurrences are unions of shot spans.
	seq.shotObjects = make([][]string, len(seq.Shots))
	occ := make([][]interval.Span, cfg.NumObjects)
	for si := range seq.Shots {
		span := seq.ShotSpan(si)
		for oi := 0; oi < cfg.NumObjects; oi++ {
			if r.Float64() < cfg.Presence {
				seq.shotObjects[si] = append(seq.shotObjects[si], objectName(oi))
				occ[oi] = append(occ[oi], span)
			}
		}
	}
	for oi := 0; oi < cfg.NumObjects; oi++ {
		seq.Occurrences[objectName(oi)] = interval.New(occ[oi]...)
	}
	return seq
}
