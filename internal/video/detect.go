package video

import "math"

// HistogramDistance returns the L1 distance between two frame
// histograms, the classic shot-boundary signal.
func HistogramDistance(a, b [HistogramBins]float64) float64 {
	var d float64
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}

// DefaultCutThreshold separates within-shot jitter from shot changes for
// the generator's default noise level.
const DefaultCutThreshold = 0.25

// DetectShots performs shot-change detection over frame signatures: a
// cut is declared wherever the histogram distance between consecutive
// frames exceeds the threshold. This is the "machine derived index" of
// Section 5.1 — the raw feature layer on top of which semantic indexing
// sits.
func DetectShots(frames []Frame, threshold float64) []Shot {
	if len(frames) == 0 {
		return nil
	}
	var shots []Shot
	start := 0
	for i := 1; i < len(frames); i++ {
		if HistogramDistance(frames[i-1].Histogram, frames[i].Histogram) > threshold {
			shots = append(shots, Shot{Start: start, End: i})
			start = i
		}
	}
	return append(shots, Shot{Start: start, End: len(frames)})
}

// ShotDetectionAccuracy compares detected against ground-truth shots and
// returns precision and recall of the cut positions.
func ShotDetectionAccuracy(detected, truth []Shot) (precision, recall float64) {
	cutSet := func(shots []Shot) map[int]bool {
		cuts := make(map[int]bool)
		for i := 1; i < len(shots); i++ {
			cuts[shots[i].Start] = true
		}
		return cuts
	}
	dc, tc := cutSet(detected), cutSet(truth)
	if len(dc) == 0 && len(tc) == 0 {
		return 1, 1
	}
	var hit int
	for c := range dc {
		if tc[c] {
			hit++
		}
	}
	if len(dc) > 0 {
		precision = float64(hit) / float64(len(dc))
	}
	if len(tc) > 0 {
		recall = float64(hit) / float64(len(tc))
	} else {
		recall = 1
	}
	return precision, recall
}
