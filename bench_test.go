// Package videodb_bench holds the testing.B counterparts of the
// reproduction experiments E1–E10 (see DESIGN.md for the experiment
// index and cmd/bench for the table-printing harness). One benchmark
// family per figure/claim of the paper.
package videodb_bench

import (
	"fmt"
	"math/rand"
	"testing"

	"videodb/internal/constraint"
	"videodb/internal/core"
	"videodb/internal/datalog"
	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
	"videodb/internal/temporal"
	"videodb/internal/video"
)

// --- E1–E3: the indexing schemes of Figures 1–3 --------------------------------

func figureSequence() *video.Sequence {
	return video.Generate(video.GenConfig{
		Seed: 42, DurationSec: 1800, NumObjects: 20, AvgShotSec: 6, Presence: 0.2,
	})
}

func BenchmarkE1SegmentationBuild(b *testing.B) {
	seq := figureSequence()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		video.NewSegmentation(seq, 10)
	}
}

func BenchmarkE1SegmentationQuery(b *testing.B) {
	seq := figureSequence()
	idx := video.NewSegmentation(seq, 10)
	objs := seq.Objects()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Occurrences(objs[i%len(objs)])
	}
}

func BenchmarkE2StratificationBuild(b *testing.B) {
	seq := figureSequence()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		video.NewStratification(seq)
	}
}

func BenchmarkE2StratificationQuery(b *testing.B) {
	seq := figureSequence()
	idx := video.NewStratification(seq)
	objs := seq.Objects()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Occurrences(objs[i%len(objs)])
	}
}

func BenchmarkE3GeneralizedIntervalBuild(b *testing.B) {
	seq := figureSequence()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		video.NewGeneralizedIndexing(seq)
	}
}

func BenchmarkE3GeneralizedIntervalQuery(b *testing.B) {
	seq := figureSequence()
	idx := video.NewGeneralizedIndexing(seq)
	objs := seq.Objects()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Occurrences(objs[i%len(objs)])
	}
}

// --- E4: the Rope example queries ------------------------------------------------

func ropeDB(b *testing.B) *core.DB {
	b.Helper()
	db := core.New()
	_, err := db.LoadScript(`
interval gi1 { duration: (t > 0 and t < 30), entities: {o1, o2, o3, o4},
               subject: "murder", victim: o1, murderer: {o2, o3} }.
interval gi2 { duration: (t > 40 and t < 80),
               entities: {o1, o2, o3, o4, o5, o6, o7, o8, o9},
               subject: "Giving a party", host: {o2, o3}, guest: {o5, o6, o7, o8, o9} }.
object o1 { name: "David", role: "Victim" }.
object o2 { name: "Philip", role: "Murderer" }.
object o3 { name: "Brandon", role: "Murderer" }.
object o4 { identification: "Chest" }.
object o5 { name: "Janet" }.
object o6 { name: "Kenneth" }.
object o7 { name: "Mr Kentley" }.
object o8 { name: "Mrs Atwater" }.
object o9 { name: "Rupert Cadell" }.
in(o1, o4, gi1).
in(o1, o4, gi2).
contains(G1, G2) :- Interval(G1), Interval(G2), G2.duration => G1.duration.
`)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkE4RopeQueries(b *testing.B) {
	queries := []struct {
		name  string
		query string
	}{
		{"q1_objects_in_gi1", "?- Object(O), O in gi1.entities."},
		{"q2_intervals_with_o1", "?- Interval(G), o1 in G.entities."},
		{"q3_temporal_frame", "?- Interval(G), o1 in G.entities, G.duration => (t > 0 and t < 35)."},
		{"q4_together", "?- Interval(G), {o1, o5} subset G.entities."},
		{"q5_relation_pairs", "?- Interval(G), in(O1, O2, G)."},
		{"q6_attr_value", `?- Interval(G), Object(O), O in G.entities, O.name = "David".`},
		{"r1_contains", "?- contains(G1, G2)."},
	}
	db := ropeDB(b)
	for _, q := range queries {
		b.Run(q.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q.query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: PTIME scaling with dense-order constraints --------------------------------

func arithStore(n int) *store.Store {
	r := rand.New(rand.NewSource(7))
	st := store.New()
	for i := 0; i < n; i++ {
		lo := r.Float64() * float64(n)
		st.Put(object.NewInterval(object.OID(fmt.Sprintf("g%06d", i)),
			interval.FromPairs(lo, lo+1+r.Float64()*10)))
	}
	return st
}

func BenchmarkE5ArithScaling(b *testing.B) {
	frame := object.Temporal(interval.FromPairs(0, 500))
	prog := datalog.NewProgram(datalog.NewRule(
		datalog.Rel("within", datalog.Var("G")),
		datalog.Interval(datalog.Var("G")),
		datalog.Entails(datalog.AttrOp(datalog.Var("G"), "duration"),
			datalog.TermOp(datalog.Const(frame))),
	))
	for _, n := range []int{100, 300, 1000, 3000} {
		st := arithStore(n)
		b.Run(fmt.Sprintf("within/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := datalog.NewEngine(st, prog)
				if err != nil {
					b.Fatal(err)
				}
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	contains := datalog.NewProgram(datalog.NewRule(
		datalog.Rel("contains", datalog.Var("G1"), datalog.Var("G2")),
		datalog.Interval(datalog.Var("G1")),
		datalog.Interval(datalog.Var("G2")),
		datalog.Entails(datalog.AttrOp(datalog.Var("G2"), "duration"),
			datalog.AttrOp(datalog.Var("G1"), "duration")),
	))
	for _, n := range []int{100, 300, 1000} {
		st := arithStore(n)
		b.Run(fmt.Sprintf("contains/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := datalog.NewEngine(st, contains)
				if err != nil {
					b.Fatal(err)
				}
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E6: set-order constraint solving -------------------------------------------------

func setConj(n int) constraint.SetConj {
	r := rand.New(rand.NewSource(11))
	univ := make([]string, 50)
	for i := range univ {
		univ[i] = fmt.Sprintf("c%02d", i)
	}
	vars := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	var conj constraint.SetConj
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0:
			conj = append(conj, constraint.Member(univ[r.Intn(len(univ))], vars[r.Intn(len(vars))]))
		case 1:
			conj = append(conj, constraint.Subset(
				constraint.SetVar(vars[r.Intn(len(vars))]),
				constraint.SetLit(univ[:10+r.Intn(40)]...)))
		case 2:
			conj = append(conj, constraint.Subset(
				constraint.SetLit(univ[r.Intn(len(univ))]),
				constraint.SetVar(vars[r.Intn(len(vars))])))
		default:
			conj = append(conj, constraint.Subset(
				constraint.SetVar(vars[r.Intn(len(vars))]),
				constraint.SetVar(vars[r.Intn(len(vars))])))
		}
	}
	return conj
}

func BenchmarkE6SetOrderScaling(b *testing.B) {
	for _, n := range []int{10, 100, 1000, 10000} {
		conj := setConj(n)
		goal := constraint.SetConj{constraint.Member("c00", "A")}
		b.Run(fmt.Sprintf("satisfiable/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				conj.Satisfiable()
			}
		})
		b.Run(fmt.Sprintf("entails/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				conj.Entails(goal)
			}
		})
	}
}

// --- E7: constructive rules / extended active domain -----------------------------------

func BenchmarkE7Constructive(b *testing.B) {
	prog := datalog.NewProgram(datalog.NewRule(
		datalog.Rel("all", datalog.Concat(datalog.Var("G1"), datalog.Var("G2"))),
		datalog.Interval(datalog.Var("G1")),
		datalog.Interval(datalog.Var("G2")),
	))
	for _, k := range []int{3, 5, 7, 9} {
		st := store.New()
		for i := 0; i < k; i++ {
			st.Put(object.NewInterval(object.OID(fmt.Sprintf("b%02d", i)),
				interval.FromPairs(float64(10*i), float64(10*i+5))))
		}
		b.Run(fmt.Sprintf("base=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := datalog.NewEngine(st, prog, datalog.MaxCreated(1<<22))
				if err != nil {
					b.Fatal(err)
				}
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: point-based vs interval-based temporal queries ----------------------------------

func BenchmarkE8PointVsInterval(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	const pairs = 512
	gs := make([]interval.Generalized, pairs)
	hs := make([]interval.Generalized, pairs)
	for i := range gs {
		n := 1 + r.Intn(3)
		spans := make([]interval.Span, n)
		for j := range spans {
			lo := r.Float64() * 100
			spans[j] = interval.Closed(lo, lo+r.Float64()*20)
		}
		gs[i] = interval.New(spans...)
		lo := r.Float64() * 100
		hs[i] = interval.New(interval.Closed(lo, lo+r.Float64()*30))
	}
	alg, con := temporal.Algebraic{}, temporal.Constraint{}
	cases := []struct {
		name string
		fn   func(g, h interval.Generalized) bool
	}{
		{"interval/before", alg.Before},
		{"point/before", con.Before},
		{"interval/contains", alg.Contains},
		{"point/contains", con.Contains},
		{"interval/overlaps", alg.Overlaps},
		{"point/overlaps", con.Overlaps},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.fn(gs[i%pairs], hs[i%pairs])
			}
		})
	}
}

// --- E9: naive vs semi-naive ablation -----------------------------------------------------

func BenchmarkE9NaiveVsSeminaive(b *testing.B) {
	const n = 60
	st := store.New()
	for i := 0; i < n; i++ {
		st.AddFact(store.NewFact("next",
			object.Str(fmt.Sprintf("n%04d", i)), object.Str(fmt.Sprintf("n%04d", i+1))))
	}
	prog := datalog.NewProgram(
		datalog.NewRule(datalog.Rel("reach", datalog.Var("X"), datalog.Var("Y")),
			datalog.Rel("next", datalog.Var("X"), datalog.Var("Y"))),
		datalog.NewRule(datalog.Rel("reach", datalog.Var("X"), datalog.Var("Z")),
			datalog.Rel("reach", datalog.Var("X"), datalog.Var("Y")),
			datalog.Rel("next", datalog.Var("Y"), datalog.Var("Z"))),
	)
	b.Run("seminaive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, err := datalog.NewEngine(st, prog)
			if err != nil {
				b.Fatal(err)
			}
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, err := datalog.NewEngine(st, prog, datalog.Naive())
			if err != nil {
				b.Fatal(err)
			}
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E10: index ablation --------------------------------------------------------------------

func BenchmarkE10IndexAblation(b *testing.B) {
	seq := video.Generate(video.GenConfig{
		Seed: 9, DurationSec: 20000, NumObjects: 100, AvgShotSec: 5, Presence: 0.03,
	})
	build := func(opts ...store.Option) *core.DB {
		db := core.New(core.WithStore(store.NewWith(opts...)))
		if err := video.Populate(db, seq); err != nil {
			b.Fatal(err)
		}
		return db
	}
	full := build()
	noEnt := build(store.WithoutEntityIndex())
	noTree := build(store.WithoutTemporalIndex())
	scanPlan := core.New(core.WithStore(full.Store()),
		core.WithEngineOptions(datalog.WithoutMemberIndex()))

	const memberQuery = "?- Interval(G), obj007 in G.entities."
	b.Run("member/indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := full.Query(memberQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("member/no-entity-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := noEnt.Query(memberQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("member/scan-plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := scanPlan.Query(memberQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("overlap/interval-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			full.Store().IntervalsOverlapping(interval.Closed(100, 130))
		}
	})
	b.Run("overlap/linear-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			noTree.Store().IntervalsOverlapping(interval.Closed(100, 130))
		}
	})
}

// --- E11: query-reachability pruning (design decision) -------------------------------

func BenchmarkE11QueryPruning(b *testing.B) {
	// A database with one relevant rule and many irrelevant ones: pruning
	// should make query latency independent of the unrelated program.
	build := func(opts ...core.Option) *core.DB {
		db := core.New(opts...)
		if _, err := db.LoadScript(`
interval gi1 { duration: [0, 30], entities: {o1, o2} }.
interval gi2 { duration: [40, 80], entities: {o1} }.
object o1 { name: "David" }.
object o2 { name: "Philip" }.
`); err != nil {
			b.Fatal(err)
		}
		if err := db.DefineRule("appears(O, G) :- Interval(G), Object(O), O in G.entities"); err != nil {
			b.Fatal(err)
		}
		// Sixty unrelated derived relations.
		for i := 0; i < 60; i++ {
			rule := fmt.Sprintf("junk%d(G1, G2) :- Interval(G1), Interval(G2), "+
				"G2.duration => G1.duration", i)
			if err := db.DefineRule(rule); err != nil {
				b.Fatal(err)
			}
		}
		return db
	}
	pruned := build()
	full := build(core.WithoutQueryPruning())
	const q = "?- appears(o1, G)."
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pruned.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-program", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := full.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E12: parallel rule evaluation (design decision) -----------------------------------

func BenchmarkE12ParallelEvaluation(b *testing.B) {
	st := store.New()
	for i := 0; i < 300; i++ {
		st.AddFact(store.NewFact("edge",
			object.Str(fmt.Sprintf("n%03d", i)), object.Str(fmt.Sprintf("n%03d", (i+7)%300))))
	}
	var rules []datalog.Rule
	for k := 0; k < 12; k++ {
		rules = append(rules, datalog.NewRule(
			datalog.Rel(fmt.Sprintf("tri%d", k), datalog.Var("X"), datalog.Var("W")),
			datalog.Rel("edge", datalog.Var("X"), datalog.Var("Y")),
			datalog.Rel("edge", datalog.Var("Y"), datalog.Var("Z")),
			datalog.Rel("edge", datalog.Var("Z"), datalog.Var("W")),
		))
	}
	prog := datalog.NewProgram(rules...)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := datalog.NewEngine(st, prog, datalog.Parallel(workers))
				if err != nil {
					b.Fatal(err)
				}
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E13: join index ablation (design decision) ------------------------------------------

func BenchmarkE13JoinIndex(b *testing.B) {
	st := store.New()
	for i := 0; i < 500; i++ {
		st.AddFact(store.NewFact("edge",
			object.Str(fmt.Sprintf("n%03d", i)), object.Str(fmt.Sprintf("n%03d", (i+13)%500))))
	}
	prog := datalog.NewProgram(datalog.NewRule(
		datalog.Rel("hop2", datalog.Var("X"), datalog.Var("Z")),
		datalog.Rel("edge", datalog.Var("X"), datalog.Var("Y")),
		datalog.Rel("edge", datalog.Var("Y"), datalog.Var("Z")),
	))
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, err := datalog.NewEngine(st, prog)
			if err != nil {
				b.Fatal(err)
			}
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, err := datalog.NewEngine(st, prog, datalog.WithoutJoinIndex())
			if err != nil {
				b.Fatal(err)
			}
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
