// Command virtualediting demonstrates the constructive side of the query
// language (Section 6.1): rules whose heads concatenate generalized
// intervals build new video sequences from existing ones — the "virtual
// editing" use case of the paper's conclusion — and the presentation
// helper turns the result into a playable edit decision list.
package main

import (
	"fmt"
	"log"

	"videodb/internal/core"
)

const archive = `
// Fragments of a documentary, annotated with their subjects.
interval intro    { duration: [0, 45),            entities: {narrator},           topic: "intro" }.
interval seaA     { duration: [45, 120),          entities: {narrator, whale},    topic: "sea" }.
interval cityA    { duration: [120, 200),         entities: {mayor},              topic: "city" }.
interval seaB     { duration: [200, 260) + [300, 330), entities: {whale, diver},  topic: "sea" }.
interval cityB    { duration: [260, 300),         entities: {mayor, narrator},    topic: "city" }.
interval credits  { duration: [330, 360),         entities: {narrator},           topic: "credits" }.

object narrator { name: "Narrator" }.
object whale    { name: "Humpback" }.
object diver    { name: "Diver" }.
object mayor    { name: "Mayor" }.

// Virtual edit 1: every pair of fragments on the same topic merges into
// a combined sequence (the constructive rule of Section 6.2).
same_topic_cut(G1 + G2) :- Interval(G1), Interval(G2),
                           G1.topic = G2.topic, G1 != G2.

// Virtual edit 2: all whale footage, merged.
whale_reel(G1 + G2) :- Interval(G1), Interval(G2),
                       whale in G1.entities, whale in G2.entities.
`

func main() {
	db := core.New()
	if _, err := db.LoadScript(archive); err != nil {
		log.Fatal(err)
	}

	rs, err := db.Query("?- same_topic_cut(G).")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same-topic cuts (constructed sequences):")
	for _, row := range rs.Rows {
		oid, _ := row[0].AsRef()
		if o := rs.Object(oid); o != nil {
			fmt.Printf("  %-12s duration %v  topic %v\n", oid, o.Duration(), o.Attr("topic"))
		}
	}
	fmt.Printf("(%d objects created by ⊕ during evaluation)\n\n", rs.Stats.Created)

	rs, err = db.Query("?- whale_reel(G).")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("whale reel:")
	for _, row := range rs.Rows {
		oid, _ := row[0].AsRef()
		o := rs.Object(oid)
		fmt.Printf("  %-12s %v\n", oid, o.Duration())
	}
	fmt.Println()

	// Imperative virtual editing: compose the sea fragments and print the
	// playable edit decision list.
	cut, err := db.Compose("seaA", "seaB")
	if err != nil {
		log.Fatal(err)
	}
	edl, err := db.Presentation(cut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sea supercut %q (runtime %.0fs):\n%s\n", cut, edl.Runtime(), edl)
}
