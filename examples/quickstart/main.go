// Command quickstart walks through the paper's worked example (Section
// 5.2, Alfred Hitchcock's "The Rope"): build the database through the
// VideoQL data format, then ask the six example queries of Section 6.1
// and the derived relations of Section 6.2.
package main

import (
	"fmt"
	"log"

	"videodb/internal/core"
)

const ropeDB = `
// Two generalized intervals: the murder and the party.
interval gi1 {
    duration: (t > 0 and t < 30),
    entities: {o1, o2, o3, o4},
    subject: "murder",
    victim: o1,
    murderer: {o2, o3}
}.
interval gi2 {
    duration: (t > 40 and t < 80),
    entities: {o1, o2, o3, o4, o5, o6, o7, o8, o9},
    subject: "Giving a party",
    host: {o2, o3},
    guest: {o5, o6, o7, o8, o9}
}.

// The semantic objects.
object o1 { name: "David",         role: "Victim" }.
object o2 { name: "Philip",        realname: "Farley Granger",    role: "Murderer" }.
object o3 { name: "Brandon",       realname: "John Dall",         role: "Murderer" }.
object o4 { identification: "Chest" }.
object o5 { name: "Janet",         realname: "Joan Chandler" }.
object o6 { name: "Kenneth",       realname: "Douglas Dick" }.
object o7 { name: "Mr Kentley",    realname: "Cedric Hardwicke" }.
object o8 { name: "Mrs Atwater",   realname: "Constance Collier" }.
object o9 { name: "Rupert Cadell", realname: "James Stewart" }.

// David's body is in the chest during both intervals.
in(o1, o4, gi1).
in(o1, o4, gi2).

// Derived relations of Section 6.2.
contains(G1, G2) :- Interval(G1), Interval(G2), G2.duration => G1.duration.
same_object_in(G1, G2, O) :- Interval(G1), Interval(G2), Object(O),
                             O in G1.entities, O in G2.entities.
`

func main() {
	db := core.New()
	if _, err := db.LoadScript(ropeDB); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d intervals, %d semantic objects\n\n",
		len(db.Intervals()), len(db.Entities()))

	queries := []struct {
		title string
		query string
	}{
		{"objects appearing in gi1",
			"?- Object(O), O in gi1.entities."},
		{"intervals where David (o1) appears",
			"?- Interval(G), o1 in G.entities."},
		{"does David appear within the frame (0,35)?",
			"?- Interval(G), o1 in G.entities, G.duration => (t > 0 and t < 35)."},
		{"intervals where David and Janet appear together",
			"?- Interval(G), {o1, o5} subset G.entities."},
		{"object pairs related by 'in' within an interval",
			"?- Interval(G), in(O1, O2, G)."},
		{"intervals containing an object named David",
			`?- Interval(G), Object(O), O in G.entities, O.name = "David".`},
		{"interval containment (derived)",
			"?- contains(G1, G2), G1 != G2."},
		{"objects shared by gi1 and gi2 (derived)",
			"?- same_object_in(gi1, gi2, O)."},
	}
	for _, q := range queries {
		rs, err := db.Query(q.query)
		if err != nil {
			log.Fatalf("%s: %v", q.title, err)
		}
		fmt.Printf("%s\n  %s\n", q.title, q.query)
		if len(rs.Rows) == 0 {
			fmt.Println("  (no answers)")
		}
		for _, row := range rs.Rows {
			fmt.Print("  ")
			for i, v := range row {
				if i > 0 {
					fmt.Print(", ")
				}
				fmt.Printf("%s = %s", rs.Columns[i], v)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
