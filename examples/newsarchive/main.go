// Command newsarchive reproduces the motivating scenario of Section 3: a
// broadcast-news archive indexed three ways — segmentation (Figure 1),
// stratification (Figure 2) and the paper's generalized intervals
// (Figure 3) — and then queried through the rule language.
//
// It prints the annotation-count/storage/answer-quality comparison
// between the schemes, then loads the generalized-interval model into a
// video database and runs archive queries.
package main

import (
	"fmt"
	"log"
	"time"

	"videodb/internal/core"
	"videodb/internal/video"
)

func main() {
	seq := video.Generate(video.GenConfig{
		Seed:        1999,
		Name:        "broadcast-news",
		DurationSec: 1800, // a 30-minute broadcast
		NumObjects:  12,   // reporters, ministers, tanks, jeeps…
		AvgShotSec:  8,
		Presence:    0.2,
	})
	fmt.Printf("sequence %q: %.0fs, %d shots, %d objects of interest\n\n",
		seq.Name, seq.Duration(), len(seq.Shots), len(seq.Objects()))

	// Machine-derived index: shot-change detection over color histograms.
	detected := video.DetectShots(seq.Frames, video.DefaultCutThreshold)
	p, r := video.ShotDetectionAccuracy(detected, seq.Shots)
	fmt.Printf("shot detection: %d detected (precision %.2f, recall %.2f)\n\n", len(detected), p, r)

	// The three indexing schemes of Figures 1–3.
	schemes := []video.Indexer{
		video.NewSegmentation(seq, 10),
		video.NewStratification(seq),
		video.NewGeneralizedIndexing(seq),
	}
	fmt.Printf("%-22s %12s %10s %12s %10s %10s\n",
		"scheme", "annotations", "bytes", "query", "precision", "recall")
	for _, idx := range schemes {
		start := time.Now()
		var precSum, recSum float64
		for _, obj := range seq.Objects() {
			ans := idx.Occurrences(obj)
			pr, rc := video.AnswerQuality(ans, seq.Occurrences[obj])
			precSum += pr
			recSum += rc
		}
		elapsed := time.Since(start)
		n := float64(len(seq.Objects()))
		fmt.Printf("%-22s %12d %10d %12s %10.3f %10.3f\n",
			idx.Name(), idx.Annotations(), idx.StorageBytes(),
			elapsed.Round(time.Microsecond), precSum/n, recSum/n)
	}
	fmt.Println()

	// Load the generalized-interval model into a database and query it.
	db := core.New()
	if err := video.Populate(db, seq); err != nil {
		log.Fatal(err)
	}
	if err := db.DefineRule(
		"co_occur(O1, O2, S) :- Interval(S), Object(O1), Object(O2), " +
			"O1 in S.entities, O2 in S.entities, O1 != O2"); err != nil {
		log.Fatal(err)
	}

	rs, err := db.Query("?- co_occur(obj000, O, S).")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("obj000 shares a shot with %d (object, shot) pairs\n", len(rs.Rows))

	rs, err = db.Query("?- Interval(G), obj001 in G.entities, G.duration => (t > 0 and t < 300).")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("intervals with obj001 entirely inside the first 5 minutes: %d\n", len(rs.Rows))

	// The single-identifier retrieval of Figure 3: one object, all its
	// occurrences, straight from its generalized interval.
	occ := db.Object("occ_obj000")
	if occ != nil {
		fmt.Printf("obj000 is on screen %.0fs across %d fragments\n",
			occ.Duration().Duration(), occ.Duration().NumSpans())
	}
}
