// Command archive models what the paper's prototype was built for — "a
// video document archive … by both a television channel and a national
// audio-visual institute" (Section 1): several video documents in one
// durable database, each a 7-tuple V = (I, O, f, R, Σ, λ1, λ2), queried
// across documents and compiled into a broadcast-ready edit list.
package main

import (
	"fmt"
	"log"
	"os"

	"videodb/internal/core"
	"videodb/internal/interval"
	"videodb/internal/object"
)

func main() {
	dir, err := os.MkdirTemp("", "videodb-archive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := core.Open(dir) // durable: WAL + checkpoints
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Two news broadcasts sharing recurring subjects.
	for _, e := range []struct {
		oid  object.OID
		name string
	}{
		{"minister", "The Minister"}, {"reporter", "Field Reporter"},
		{"anchor", "Anchor"}, {"tank", "Tank"},
	} {
		if err := db.PutEntity(e.oid, map[string]object.Value{"name": object.Str(e.name)}); err != nil {
			log.Fatal(err)
		}
	}

	monday, err := db.CreateSequence("news_mon", map[string]object.Value{
		"title": object.Str("Evening News, Monday")})
	if err != nil {
		log.Fatal(err)
	}
	tuesday, err := db.CreateSequence("news_tue", map[string]object.Value{
		"title": object.Str("Evening News, Tuesday")})
	if err != nil {
		log.Fatal(err)
	}

	add := func(seq *core.Sequence, oid object.OID, dur interval.Generalized, ents ...object.OID) {
		if err := seq.AddInterval(oid, dur, map[string]object.Value{
			object.AttrEntities: object.RefSet(ents...),
		}); err != nil {
			log.Fatal(err)
		}
	}
	add(monday, "mon_intro", interval.FromPairs(0, 40), "anchor")
	add(monday, "mon_speech", interval.FromPairs(40, 160, 300, 340), "minister", "reporter")
	add(monday, "mon_army", interval.FromPairs(160, 300), "tank", "reporter")
	add(tuesday, "tue_intro", interval.FromPairs(0, 35), "anchor")
	add(tuesday, "tue_follow", interval.FromPairs(35, 200), "minister")

	// The 7-tuple of Monday's broadcast, per Section 5.1.
	v := monday.Tuple()
	fmt.Printf("V(news_mon): |I|=%d |O|=%d |f|=%d |R|=%d\n", len(v.I), len(v.O), len(v.F), len(v.R))
	for _, gi := range v.I {
		fmt.Printf("  λ1(%s) = %v   λ2(%s) = %v\n", gi, v.Lambda1[gi], gi, v.Lambda2[gi])
	}
	fmt.Println()

	// Cross-document query: every fragment of any broadcast showing the
	// minister.
	if err := db.DefineRule(
		"minister_footage(G, S) :- part_of(G, S), Interval(G), minister in G.entities"); err != nil {
		log.Fatal(err)
	}
	rs, err := db.Query("?- minister_footage(G, S).")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("minister footage across the archive:")
	for _, row := range rs.Rows {
		fmt.Printf("  %s (from %s)\n", row[0], row[1])
	}
	fmt.Println()

	// Compile it into a gapless reel.
	oids := make([]object.OID, 0, len(rs.Rows))
	for _, row := range rs.Rows {
		oid, _ := row[0].AsRef()
		oids = append(oids, oid)
	}
	edl, err := db.Presentation(oids...)
	if err != nil {
		log.Fatal(err)
	}
	reel, err := edl.Compact(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled reel (%.0fs):\n%s\n", reel.Runtime(), reel)
}
