// Command spatial shows that the spatial queries the paper mentions
// ("Special queries, like spatial and temporal ones, can be expressed in
// a much more declarative manner", Section 2) need no new machinery:
// per-interval bounding boxes are ordinary attributes, and spatial
// relations are ordinary rules over attribute comparisons.
package main

import (
	"fmt"
	"log"

	"videodb/internal/core"
)

const scene = `
// One shot of a talk show: screen coordinates are attributes of
// per-object appearance intervals (x grows right, y grows down).
interval host_app  { duration: [0, 60), entities: {host},
                     x1: 100, x2: 300, y1: 200, y2: 600 }.
interval guest_app { duration: [0, 60), entities: {guest},
                     x1: 400, x2: 620, y1: 220, y2: 610 }.
interval logo_app  { duration: [0, 60), entities: {logo},
                     x1: 560, x2: 640, y1: 20,  y2: 90 }.
interval band_app  { duration: [30, 60), entities: {band},
                     x1: 120, x2: 520, y1: 400, y2: 640 }.

object host  { name: "Host" }.
object guest { name: "Guest" }.
object logo  { name: "Station logo" }.
object band  { name: "Band" }.

// Spatial relations as rules (Allen-style relations on each axis).
left_of(A, B)  :- Interval(A), Interval(B), A.x2 < B.x1.
above(A, B)    :- Interval(A), Interval(B), A.y2 < B.y1.
x_overlap(A, B) :- Interval(A), Interval(B), A.x1 <= B.x2, B.x1 <= A.x2.
y_overlap(A, B) :- Interval(A), Interval(B), A.y1 <= B.y2, B.y1 <= A.y2.
boxes_overlap(A, B) :- x_overlap(A, B), y_overlap(A, B), A != B.

// Spatio-temporal: overlapping boxes during overlapping screen time.
collide(A, B) :- boxes_overlap(A, B), Interval(A), Interval(B),
                 [30, 59] => A.duration, [30, 59] => B.duration.
`

func main() {
	db := core.New()
	if _, err := db.LoadScript(scene); err != nil {
		log.Fatal(err)
	}
	show := func(title, query string) {
		rs, err := db.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  %s\n", title, query)
		for _, row := range rs.Rows {
			fmt.Print("  ")
			for i, v := range row {
				if i > 0 {
					fmt.Print(", ")
				}
				fmt.Printf("%s = %s", rs.Columns[i], v)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	show("who is left of the guest?", "?- left_of(A, guest_app).")
	show("what sits above the band?", "?- above(A, band_app).")
	show("which screen regions collide in the second half?", "?- collide(A, B).")
}
