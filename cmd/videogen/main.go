// Command videogen generates a synthetic annotated video sequence (the
// substitute for the paper's proprietary TV-news archives) and emits it
// as a VideoQL script or a database snapshot.
//
// Usage:
//
//	videogen [-seed N] [-duration SECONDS] [-objects N] [-shot SECONDS]
//	         [-presence P] [-format vql|snapshot] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"videodb/internal/core"
	"videodb/internal/video"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	duration := flag.Float64("duration", 600, "sequence length in seconds")
	objects := flag.Int("objects", 10, "number of semantic objects")
	shot := flag.Float64("shot", 6, "mean shot length in seconds")
	presence := flag.Float64("presence", 0.25, "per-shot object presence probability")
	format := flag.String("format", "vql", "output format: vql or snapshot")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	seq := video.Generate(video.GenConfig{
		Seed:        *seed,
		DurationSec: *duration,
		NumObjects:  *objects,
		AvgShotSec:  *shot,
		Presence:    *presence,
	})

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	switch *format {
	case "vql":
		if err := video.WriteVQL(w, seq); err != nil {
			fatal(err)
		}
	case "snapshot":
		db := core.New()
		if err := video.Populate(db, seq); err != nil {
			fatal(err)
		}
		if err := db.Store().Save(w); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "videogen:", err)
	os.Exit(1)
}
