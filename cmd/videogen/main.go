// Command videogen generates a synthetic annotated video sequence (the
// substitute for the paper's proprietary TV-news archives) and emits it
// as a VideoQL script or a database snapshot.
//
// Usage:
//
//	videogen [-seed N] [-duration SECONDS] [-objects N] [-shot SECONDS]
//	         [-presence P] [-format vql|snapshot] [-o FILE]
//	videogen -stream [-rate BATCHES_PER_SEC] [-url http://host:port]
//
// With -stream the sequence is replayed as live annotation: one script
// batch of object declarations followed by one batch per shot in
// timeline order. With -url each batch is POSTed to the server's
// /v1/script endpoint (paced by -rate), so standing queries registered
// via /v1/subscribe see the broadcast arrive; without -url the batches
// are written to the output separated by "// ---" markers.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"videodb/internal/core"
	"videodb/internal/video"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	duration := flag.Float64("duration", 600, "sequence length in seconds")
	objects := flag.Int("objects", 10, "number of semantic objects")
	shot := flag.Float64("shot", 6, "mean shot length in seconds")
	presence := flag.Float64("presence", 0.25, "per-shot object presence probability")
	format := flag.String("format", "vql", "output format: vql or snapshot")
	out := flag.String("o", "", "output file (default stdout)")
	stream := flag.Bool("stream", false, "replay the sequence as per-shot script batches")
	rate := flag.Float64("rate", 0, "streaming pace in batches per second (0 = unpaced)")
	url := flag.String("url", "", "server base URL to POST streamed batches to (default: write batches to output)")
	flag.Parse()

	seq := video.Generate(video.GenConfig{
		Seed:        *seed,
		DurationSec: *duration,
		NumObjects:  *objects,
		AvgShotSec:  *shot,
		Presence:    *presence,
	})

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *stream {
		if err := streamReplay(w, seq, *url, *rate); err != nil {
			fatal(err)
		}
		return
	}

	switch *format {
	case "vql":
		if err := video.WriteVQL(w, seq); err != nil {
			fatal(err)
		}
	case "snapshot":
		db := core.New()
		if err := video.Populate(db, seq); err != nil {
			fatal(err)
		}
		if err := db.Store().Save(w); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

// streamReplay emits the sequence's script batches in timeline order,
// either to a running server's /v1/script endpoint or to w. rate > 0
// paces delivery at that many batches per second — the replay analogue
// of real-time annotation.
func streamReplay(w io.Writer, seq *video.Sequence, baseURL string, rate float64) error {
	batches := video.StreamBatches(seq)
	var gap time.Duration
	if rate > 0 {
		gap = time.Duration(float64(time.Second) / rate)
	}
	base := strings.TrimSuffix(baseURL, "/")
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	for i, batch := range batches {
		if gap > 0 && i > 0 {
			// Pace against the schedule, not the previous send, so slow
			// posts don't accumulate drift.
			if d := time.Until(start.Add(time.Duration(i) * gap)); d > 0 {
				time.Sleep(d)
			}
		}
		if base == "" {
			if i > 0 {
				fmt.Fprintf(w, "// --- batch %d ---\n", i)
			}
			if _, err := io.WriteString(w, batch); err != nil {
				return err
			}
			continue
		}
		if err := postScript(client, base, batch); err != nil {
			return fmt.Errorf("batch %d: %w", i, err)
		}
	}
	if base != "" {
		fmt.Fprintf(os.Stderr, "videogen: streamed %d batches to %s in %s\n",
			len(batches), base, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func postScript(client *http.Client, base, script string) error {
	body, err := json.Marshal(map[string]string{"script": script})
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/script", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("server returned %d: %s", resp.StatusCode, msg)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "videogen:", err)
	os.Exit(1)
}
