// Command videoserver serves a video database over HTTP (see
// internal/server for the API).
//
// Usage:
//
//	videoserver [-addr :8080] [-data DIR | -db snapshot.json]
//	            [-backend mem|segment] [-block-cache BYTES]
//	            [-query-timeout 0] [-max-derived N]
//	            [-max-concurrent 0] [-queue-depth 0] [-per-tenant]
//	            [-slow-query 0] [-access-log] [-pprof] [script.vql ...]
//
// With -data the database is durable in DIR; -backend selects the
// layout: "mem" (default) keeps every fact in memory behind a
// write-ahead log, "segment" keeps facts in immutable on-disk segment
// files behind a byte-budgeted block cache (-block-cache), so the
// corpus can exceed RAM and restarts skip WAL replay. With -db a
// snapshot is loaded into memory. Scripts run before serving (their
// query output goes to stdout). -query-timeout bounds each request's
// evaluation (0 = no bound). On SIGINT/SIGTERM the server drains
// in-flight requests and closes the database before exiting, so a
// durable store always gets its final flush.
//
// Overload: -max-concurrent N admits at most N evaluations at once
// (queries, scripts, view builds, subscription snapshots); the next
// -queue-depth requests wait FIFO for a slot and give up if their
// connection dies; the rest are refused with 429 + Retry-After.
// -per-tenant applies the limits per API key (X-API-Key header, falling
// back to the client address) instead of globally.
//
// Observability: GET /metrics serves Prometheus-format counters;
// -slow-query D logs every evaluation that takes at least D; -access-log
// logs every request; -pprof serves net/http/pprof under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"videodb/internal/core"
	"videodb/internal/datalog"
	"videodb/internal/server"
	"videodb/internal/store/segment"
)

// shutdownGrace bounds how long a drain may take once a signal arrives.
const shutdownGrace = 10 * time.Second

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run owns the whole lifecycle so every cleanup is a defer that actually
// executes: log.Fatal in main skips defers, which is exactly the bug that
// used to leave a durable store without its final flush.
func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "", "durable database directory")
	backend := flag.String("backend", "mem", "durable storage layout: mem (WAL + in-memory facts) or segment (on-disk segment files)")
	blockCache := flag.Int64("block-cache", 0, "segment backend block-cache budget in bytes (0 = default 32 MiB)")
	snapshot := flag.String("db", "", "snapshot to load (in-memory mode)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-request query evaluation bound (0 = unlimited)")
	maxDerived := flag.Int("max-derived", 0, "max derived tuples per query (0 = engine default)")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrent evaluations per tenant (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", 0, "requests allowed to wait for a slot beyond -max-concurrent")
	perTenant := flag.Bool("per-tenant", false, "apply -max-concurrent per API key / client address instead of globally")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this duration (0 = off)")
	accessLog := flag.Bool("access-log", false, "log every HTTP request")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.Parse()

	var (
		db  *core.DB
		err error
	)
	var coreOpts []core.Option
	if *maxDerived > 0 {
		coreOpts = append(coreOpts, core.WithEngineOptions(datalog.MaxDerived(*maxDerived)))
	}
	switch {
	case *dataDir != "" && *snapshot != "":
		return errors.New("videoserver: -data and -db are mutually exclusive")
	case *dataDir == "" && *backend != "mem":
		return errors.New("videoserver: -backend requires -data")
	case *dataDir != "":
		switch *backend {
		case "mem":
			db, err = core.Open(*dataDir)
		case "segment":
			var segOpts []segment.Option
			if *blockCache > 0 {
				segOpts = append(segOpts, segment.WithBlockCacheBytes(*blockCache))
			}
			db, err = core.OpenSegment(*dataDir, segOpts...)
		default:
			return fmt.Errorf("videoserver: unknown -backend %q (want mem or segment)", *backend)
		}
		if err != nil {
			return err
		}
		for _, o := range coreOpts {
			o(db)
		}
		defer func() {
			if cerr := db.Close(); cerr != nil {
				log.Printf("videoserver: close: %v", cerr)
			}
		}()
	default:
		db = core.New(coreOpts...)
		if *snapshot != "" {
			if err := db.LoadFile(*snapshot); err != nil {
				return err
			}
		}
	}

	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		results, err := db.LoadScript(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("loaded %s (%d queries)\n", path, len(results))
	}

	srvOpts := []server.Option{server.WithQueryTimeout(*queryTimeout)}
	if *maxConcurrent > 0 {
		srvOpts = append(srvOpts, server.WithAdmission(server.AdmissionConfig{
			MaxConcurrent: *maxConcurrent,
			QueueDepth:    *queueDepth,
			PerTenant:     *perTenant,
		}))
	}
	if *slowQuery > 0 {
		srvOpts = append(srvOpts, server.WithSlowQueryLog(*slowQuery, nil))
	}
	if *accessLog {
		srvOpts = append(srvOpts, server.WithAccessLog(nil))
	}
	if *pprofOn {
		srvOpts = append(srvOpts, server.WithPprof())
	}
	api := server.New(db, srvOpts...)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("videoserver listening on %s", *addr)

	select {
	case err := <-errCh:
		return err // bind failure or other serve error
	case <-ctx.Done():
	}
	stop()
	log.Print("videoserver: shutting down")
	// Close live subscriptions first: an open SSE stream never finishes on
	// its own, so Shutdown would otherwise block for the full grace period.
	api.Close()
	sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
