// Command videoserver serves a video database over HTTP (see
// internal/server for the API).
//
// Usage:
//
//	videoserver [-addr :8080] [-data DIR | -db snapshot.json] [script.vql ...]
//
// With -data the database is durable (write-ahead log + checkpoints in
// DIR); with -db a snapshot is loaded into memory. Scripts run before
// serving (their query output goes to stdout).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"videodb/internal/core"
	"videodb/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "", "durable database directory")
	snapshot := flag.String("db", "", "snapshot to load (in-memory mode)")
	flag.Parse()

	var (
		db  *core.DB
		err error
	)
	switch {
	case *dataDir != "" && *snapshot != "":
		log.Fatal("videoserver: -data and -db are mutually exclusive")
	case *dataDir != "":
		db, err = core.Open(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		defer db.Close()
	default:
		db = core.New()
		if *snapshot != "" {
			if err := db.LoadFile(*snapshot); err != nil {
				log.Fatal(err)
			}
		}
	}

	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		results, err := db.LoadScript(string(src))
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		fmt.Printf("loaded %s (%d queries)\n", path, len(results))
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(db),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("videoserver listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
