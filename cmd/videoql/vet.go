package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"videodb/internal/core"
	"videodb/internal/datalog/analyze"
)

// videoql vet — static analysis of VideoQL scripts, no evaluation.
//
//	videoql vet [-json] [-db snapshot.json | -data DIR] script.vql ...
//
// Diagnostics print one per line as "file:line:col: severity[CODE]:
// message"; -json emits the same findings as a JSON array of per-file
// reports. The exit status is 1 when any diagnostic is an error, 2 on
// usage or I/O problems, 0 otherwise.

type vetReport struct {
	File        string               `json:"file"`
	Diagnostics []analyze.Diagnostic `json:"diagnostics"`
}

func runVet(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	dbPath := fs.String("db", "", "load a database snapshot before analyzing")
	dataDir := fs.String("data", "", "open a durable database directory before analyzing")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: videoql vet [-json] [-db snapshot.json | -data DIR] script.vql ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	if *dbPath != "" && *dataDir != "" {
		fmt.Fprintln(stderr, "videoql vet: -db and -data are mutually exclusive")
		return 2
	}

	var db *core.DB
	if *dataDir != "" {
		var err error
		db, err = core.Open(*dataDir)
		if err != nil {
			fmt.Fprintln(stderr, "videoql vet:", err)
			return 2
		}
	} else {
		db = core.New()
		if *dbPath != "" {
			if err := db.LoadFile(*dbPath); err != nil {
				fmt.Fprintln(stderr, "videoql vet:", err)
				return 2
			}
		}
	}
	defer db.Close()

	exit := 0
	var reports []vetReport
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "videoql vet:", err)
			return 2
		}
		// Each script is analyzed independently against the database.
		ds, err := db.Vet(string(src))
		if err != nil {
			fmt.Fprintln(stderr, "videoql vet:", err)
			return 2
		}
		if analyze.HasErrors(ds) {
			exit = 1
		}
		if *jsonOut {
			if ds == nil {
				ds = []analyze.Diagnostic{}
			}
			reports = append(reports, vetReport{File: path, Diagnostics: ds})
			continue
		}
		for _, d := range ds {
			fmt.Fprintf(stdout, "%s:%s\n", path, d)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reports)
	}
	return exit
}
