package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"videodb/internal/core"
	"videodb/internal/datalog/analyze"
)

func writeScript(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const brokenScript = `rope(r1).
deep(X) :- ropee(X), X.depth > 3.
taut(X) :- rope(X), X.tension < 5, X.tension > 10.
spare(X) :- rope(X), X.kind = "static".
?- deep(X).
?- taut(X).
`

func TestVetCommand(t *testing.T) {
	path := writeScript(t, "broken.vql", brokenScript)
	var out, errOut bytes.Buffer
	code := runVet([]string{path}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		path + ":2:12: ", // the typo'd body literal
		"VQL0002",
		`did you mean "rope"?`,
		"VQL0003",
		"VQL0006",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestVetCommandJSON(t *testing.T) {
	path := writeScript(t, "broken.vql", brokenScript)
	var out, errOut bytes.Buffer
	code := runVet([]string{"-json", path}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	var reports []vetReport
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 1 || reports[0].File != path {
		t.Fatalf("reports = %+v", reports)
	}
	codes := map[string]bool{}
	for _, d := range reports[0].Diagnostics {
		codes[d.Code] = true
	}
	for _, want := range []string{analyze.CodeUndefinedPred, analyze.CodeDeadRule, analyze.CodeUnreachable} {
		if !codes[want] {
			t.Errorf("missing %s in %+v", want, reports[0].Diagnostics)
		}
	}
}

func TestVetCommandClean(t *testing.T) {
	path := writeScript(t, "clean.vql", "rope(r1).\ndeep(X) :- rope(X), X.depth > 3.\n?- deep(X).\n")
	var out, errOut bytes.Buffer
	if code := runVet([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean script printed:\n%s", out.String())
	}
}

func TestVetCommandUsageAndErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := runVet(nil, &out, &errOut); code != 2 {
		t.Errorf("no args exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage:") {
		t.Errorf("no usage printed:\n%s", errOut.String())
	}
	errOut.Reset()
	if code := runVet([]string{filepath.Join(t.TempDir(), "nope.vql")}, &out, &errOut); code != 2 {
		t.Errorf("missing file exit = %d, want 2", code)
	}
}

func TestVetCommandWithSnapshot(t *testing.T) {
	// A snapshot supplies the schema: the script leans on facts that only
	// exist in the database, so without -db the predicate is unknown.
	dir := t.TempDir()
	snap := filepath.Join(dir, "db.json")
	{
		db := core.New()
		if _, err := db.LoadScript(`anchor(a1, r1).`); err != nil {
			t.Fatal(err)
		}
		if err := db.SaveFile(snap); err != nil {
			t.Fatal(err)
		}
		db.Close()
	}
	path := writeScript(t, "uses.vql", "held(X) :- anchor(X, Y).\n?- held(X).\n")

	var out, errOut bytes.Buffer
	if code := runVet([]string{path}, &out, &errOut); code == 0 {
		t.Fatalf("without snapshot, expected undefined-predicate error\n%s", out.String())
	}
	out.Reset()
	if code := runVet([]string{"-db", snap, path}, &out, &errOut); code != 0 {
		t.Fatalf("with snapshot exit = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
}
