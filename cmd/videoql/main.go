// Command videoql is an interactive shell (and batch runner) for VideoQL
// video databases.
//
// Usage:
//
//	videoql [-db snapshot.json | -data DIR] [script.vql ...]
//	videoql vet [-json] [-db snapshot.json | -data DIR] script.vql ...
//
// The vet subcommand statically analyzes scripts (typo'd predicates,
// arity clashes, provably dead rules, unreachable rules, perf lints)
// without evaluating them, and exits 1 when any diagnostic is an error.
//
// Scripts are executed in order; their queries print answers. Without
// scripts (or with -i), an interactive prompt follows. Statements at the
// prompt are standard VideoQL statements terminated by ".", plus the
// shell commands:
//
//	\rules            print the current rule program
//	\explain <query>  show the evaluation plan of a query
//	\why <atom>       show the derivation tree of a ground atom
//	\objects          list object ids
//	\show <oid>       print one object
//	\save <path>      write a database snapshot
//	\load <path>      read a database snapshot
//	\stats            database statistics
//	\quit             leave
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"videodb/internal/core"
	"videodb/internal/object"
)

func main() {
	// Subcommands take over before flag parsing: "videoql vet ..." is
	// static analysis, not script execution.
	if len(os.Args) > 1 && os.Args[1] == "vet" {
		os.Exit(runVet(os.Args[2:], os.Stdout, os.Stderr))
	}
	dbPath := flag.String("db", "", "load a database snapshot before running")
	dataDir := flag.String("data", "", "open a durable database directory (WAL + checkpoints)")
	interactive := flag.Bool("i", false, "force an interactive prompt after scripts")
	flag.Parse()

	var db *core.DB
	switch {
	case *dbPath != "" && *dataDir != "":
		fatal(fmt.Errorf("-db and -data are mutually exclusive"))
	case *dataDir != "":
		var err error
		db, err = core.Open(*dataDir)
		if err != nil {
			fatal(err)
		}
		defer db.Close()
		fmt.Fprintf(os.Stderr, "opened durable database %s\n", *dataDir)
	default:
		db = core.New()
		if *dbPath != "" {
			if err := db.LoadFile(*dbPath); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "loaded %s\n", *dbPath)
		}
	}

	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		results, err := db.LoadScript(string(src))
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		for _, rs := range results {
			printResult(os.Stdout, rs)
		}
	}

	if len(flag.Args()) == 0 || *interactive {
		repl(db)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "videoql:", err)
	os.Exit(1)
}

func repl(db *core.DB) { replOn(db, os.Stdin, os.Stdout) }

func replOn(db *core.DB, stdin io.Reader, w io.Writer) {
	in := bufio.NewScanner(stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := "videoql> "
	for {
		fmt.Fprint(w, prompt)
		if !in.Scan() {
			fmt.Fprintln(w)
			return
		}
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !command(w, db, trimmed) {
				return
			}
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		// Statements end with "." at end of line.
		if !strings.HasSuffix(trimmed, ".") {
			prompt = "     ... "
			continue
		}
		stmt := pending.String()
		pending.Reset()
		prompt = "videoql> "
		results, err := db.LoadScript(stmt)
		if err != nil {
			fmt.Fprintln(w, "error:", err)
			continue
		}
		for _, rs := range results {
			printResult(w, rs)
		}
	}
}

func command(w io.Writer, db *core.DB, line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\quit`, `\q`:
		return false
	case `\rules`:
		prog := db.Rules()
		if len(prog.Rules) == 0 {
			fmt.Fprintln(w, "(no rules)")
		} else {
			fmt.Fprintln(w, prog)
		}
	case `\explain`:
		if len(fields) < 2 {
			fmt.Fprintln(w, "usage: \\explain <query>")
			break
		}
		out, err := db.Explain(strings.TrimPrefix(line, `\explain `))
		if err != nil {
			fmt.Fprintln(w, "error:", err)
			break
		}
		fmt.Fprint(w, out)
	case `\why`:
		if len(fields) < 2 {
			fmt.Fprintln(w, "usage: \\why <ground atom>")
			break
		}
		out, err := db.Why(strings.TrimPrefix(line, `\why `))
		if err != nil {
			fmt.Fprintln(w, "error:", err)
			break
		}
		fmt.Fprint(w, out)
	case `\objects`:
		for _, oid := range db.Store().OIDs() {
			o := db.Object(oid)
			fmt.Fprintf(w, "%-20s %s\n", oid, o.Kind())
		}
	case `\show`:
		if len(fields) < 2 {
			fmt.Fprintln(w, "usage: \\show <oid>")
			break
		}
		o := db.Object(object.OID(fields[1]))
		if o == nil {
			fmt.Fprintf(w, "no object %q\n", fields[1])
			break
		}
		fmt.Fprintln(w, o)
	case `\save`:
		if len(fields) < 2 {
			fmt.Fprintln(w, "usage: \\save <path>")
			break
		}
		if err := db.SaveFile(fields[1]); err != nil {
			fmt.Fprintln(w, "error:", err)
		} else {
			fmt.Fprintln(w, "saved", fields[1])
		}
	case `\load`:
		if len(fields) < 2 {
			fmt.Fprintln(w, "usage: \\load <path>")
			break
		}
		if err := db.LoadFile(fields[1]); err != nil {
			fmt.Fprintln(w, "error:", err)
		} else {
			fmt.Fprintln(w, "loaded", fields[1])
		}
	case `\stats`:
		st := db.Store().Stats()
		fmt.Fprintf(w, "objects %d (%d intervals, %d entities), facts %d in %d relations\n",
			st.Objects, st.Intervals, st.Entities, st.Facts, st.Relations)
	default:
		fmt.Fprintf(w, "unknown command %s (try \\rules \\explain \\why \\objects \\show \\save \\load \\stats \\quit)\n", fields[0])
	}
	return true
}

func printResult(w io.Writer, rs *core.ResultSet) {
	if len(rs.Rows) == 0 {
		fmt.Fprintln(w, "no")
		return
	}
	if len(rs.Columns) == 0 {
		fmt.Fprintln(w, "yes")
		return
	}
	for _, row := range rs.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%s = %s", rs.Columns[i], v)
		}
		fmt.Fprintln(w, strings.Join(parts, ", "))
	}
	fmt.Fprintf(w, "(%d answers", len(rs.Rows))
	if rs.Stats.Created > 0 {
		fmt.Fprintf(w, ", %d objects created", rs.Stats.Created)
	}
	fmt.Fprintln(w, ")")
}
