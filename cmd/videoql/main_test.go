package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"videodb/internal/core"
)

func replSession(t *testing.T, input string) string {
	t.Helper()
	db := core.New()
	var out bytes.Buffer
	replOn(db, strings.NewReader(input), &out)
	return out.String()
}

func TestReplStatementsAndQueries(t *testing.T) {
	out := replSession(t, `
interval g1 { duration: [0, 10], entities: {a} }.
object a { name: "Reporter" }.
?- Interval(G), a in G.entities.
?- Interval(G), zzz in G.entities.
`)
	if !strings.Contains(out, "G = g1") {
		t.Errorf("missing answer:\n%s", out)
	}
	if !strings.Contains(out, "no") {
		t.Errorf("missing negative answer:\n%s", out)
	}
}

func TestReplMultilineStatement(t *testing.T) {
	out := replSession(t, "interval g1 {\nduration: [0, 10]\n}.\n?- Interval(G).\n")
	if !strings.Contains(out, "...") {
		t.Errorf("expected continuation prompt:\n%s", out)
	}
	if !strings.Contains(out, "G = g1") {
		t.Errorf("statement split over lines failed:\n%s", out)
	}
}

func TestReplErrorsKeepSessionAlive(t *testing.T) {
	out := replSession(t, "broken(.\n?- Interval(G).\n")
	if !strings.Contains(out, "error:") {
		t.Errorf("parse error not reported:\n%s", out)
	}
	if !strings.Contains(out, "no") { // empty db, query still runs
		t.Errorf("session did not continue after error:\n%s", out)
	}
}

func TestReplCommands(t *testing.T) {
	db := core.New()
	if _, err := db.LoadScript(`
interval g1 { duration: [0, 10], entities: {a} }.
object a { name: "Reporter" }.
appears(O, G) :- Interval(G), Object(O), O in G.entities.
`); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	run := func(line string) string {
		out.Reset()
		if !command(&out, db, line) {
			t.Fatalf("command %q ended the session", line)
		}
		return out.String()
	}

	if got := run(`\rules`); !strings.Contains(got, "appears(O, G)") {
		t.Errorf("\\rules = %q", got)
	}
	if got := run(`\objects`); !strings.Contains(got, "g1") || !strings.Contains(got, "entity") {
		t.Errorf("\\objects = %q", got)
	}
	if got := run(`\show g1`); !strings.Contains(got, "duration") {
		t.Errorf("\\show = %q", got)
	}
	if got := run(`\show nope`); !strings.Contains(got, "no object") {
		t.Errorf("\\show missing = %q", got)
	}
	if got := run(`\stats`); !strings.Contains(got, "objects 2") {
		t.Errorf("\\stats = %q", got)
	}
	if got := run(`\explain ?- appears(a, G).`); !strings.Contains(got, "stratum") {
		t.Errorf("\\explain = %q", got)
	}
	if got := run(`\why appears(a, g1).`); !strings.Contains(got, "[by") {
		t.Errorf("\\why = %q", got)
	}
	if got := run(`\bogus`); !strings.Contains(got, "unknown command") {
		t.Errorf("\\bogus = %q", got)
	}
	// Save and load.
	path := filepath.Join(t.TempDir(), "db.json")
	if got := run(`\save ` + path); !strings.Contains(got, "saved") {
		t.Errorf("\\save = %q", got)
	}
	if got := run(`\load ` + path); !strings.Contains(got, "loaded") {
		t.Errorf("\\load = %q", got)
	}
	// Quit ends the session.
	out.Reset()
	if command(&out, db, `\quit`) {
		t.Error("\\quit should end the session")
	}
}

func TestPrintResultShapes(t *testing.T) {
	db := core.New()
	if _, err := db.LoadScript(`object a { n: 1 }. object b { n: 2 }.`); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer

	rs, err := db.Query("?- Object(X), X.n = N.")
	if err != nil {
		t.Fatal(err)
	}
	printResult(&out, rs)
	if !strings.Contains(out.String(), "X = a, N = 1") || !strings.Contains(out.String(), "(2 answers") {
		t.Errorf("printResult = %q", out.String())
	}

	// Ground query prints yes/no.
	out.Reset()
	rs, err = db.Query("?- Object(a).")
	if err != nil {
		t.Fatal(err)
	}
	printResult(&out, rs)
	if strings.TrimSpace(out.String()) != "yes" {
		t.Errorf("ground true = %q", out.String())
	}
	out.Reset()
	rs, err = db.Query("?- Object(zzz).")
	if err != nil {
		t.Fatal(err)
	}
	printResult(&out, rs)
	if strings.TrimSpace(out.String()) != "no" {
		t.Errorf("ground false = %q", out.String())
	}
}
