package main

import (
	"fmt"
	"runtime"
	"time"

	"videodb/internal/core"
	"videodb/internal/datalog"
	"videodb/internal/object"
	"videodb/internal/store"
)

// E11–E13: ablations of engine design decisions added beyond the paper's
// minimum — query-reachability pruning, parallel rule evaluation, and the
// per-relation join index.

func runPruning() {
	build := func(opts ...core.Option) *core.DB {
		db := core.New(opts...)
		if _, err := db.LoadScript(`
interval gi1 { duration: [0, 30], entities: {o1, o2} }.
interval gi2 { duration: [40, 80], entities: {o1} }.
object o1 { name: "David" }.
object o2 { name: "Philip" }.
`); err != nil {
			panic(err)
		}
		if err := db.DefineRule("appears(O, G) :- Interval(G), Object(O), O in G.entities"); err != nil {
			panic(err)
		}
		for i := 0; i < 60; i++ {
			rule := fmt.Sprintf("junk%d(G1, G2) :- Interval(G1), Interval(G2), "+
				"G2.duration => G1.duration", i)
			if err := db.DefineRule(rule); err != nil {
				panic(err)
			}
		}
		return db
	}
	pruned := build()
	full := build(core.WithoutQueryPruning())
	const q = "?- appears(o1, G)."
	fmt.Printf("%-36s %14s\n", "configuration (1 relevant + 60 junk rules)", "latency")
	fmt.Printf("%-36s %14s\n", "goal-reachable subprogram (default)",
		timeIt(func() { mustQuery(pruned, q) }).Round(time.Microsecond))
	fmt.Printf("%-36s %14s\n", "full program",
		timeIt(func() { mustQuery(full, q) }).Round(time.Microsecond))
	fmt.Println("shape check: query latency is independent of unrelated rules only with pruning")
}

func runParallel() {
	n := 300
	if *quick {
		n = 100
	}
	st := store.New()
	for i := 0; i < n; i++ {
		st.AddFact(store.NewFact("edge",
			object.Str(fmt.Sprintf("n%03d", i)), object.Str(fmt.Sprintf("n%03d", (i+7)%n))))
	}
	var rules []datalog.Rule
	for k := 0; k < 12; k++ {
		rules = append(rules, datalog.NewRule(
			datalog.Rel(fmt.Sprintf("tri%d", k), datalog.Var("X"), datalog.Var("W")),
			datalog.Rel("edge", datalog.Var("X"), datalog.Var("Y")),
			datalog.Rel("edge", datalog.Var("Y"), datalog.Var("Z")),
			datalog.Rel("edge", datalog.Var("Z"), datalog.Var("W")),
		))
	}
	prog := datalog.NewProgram(rules...)
	fmt.Printf("%-12s %14s   (host has %d CPU(s))\n", "workers", "fixpoint", runtime.NumCPU())
	for _, workers := range []int{1, 2, 4, 8} {
		t := timeIt(func() {
			e, _ := datalog.NewEngine(st, prog, datalog.Parallel(workers))
			if err := e.Run(); err != nil {
				panic(err)
			}
		})
		fmt.Printf("%-12d %14s\n", workers, t.Round(time.Microsecond))
	}
	fmt.Println("shape check: independent rules spread across workers; wall-clock gains require")
	fmt.Println("multiple CPUs (on a single-CPU host this measures the coordination overhead,")
	fmt.Println("which should stay small) — equivalence with serial evaluation is property-tested")
}

func runJoinIndex() {
	n := 500
	if *quick {
		n = 150
	}
	st := store.New()
	for i := 0; i < n; i++ {
		st.AddFact(store.NewFact("edge",
			object.Str(fmt.Sprintf("n%03d", i)), object.Str(fmt.Sprintf("n%03d", (i+13)%n))))
	}
	prog := datalog.NewProgram(datalog.NewRule(
		datalog.Rel("hop2", datalog.Var("X"), datalog.Var("Z")),
		datalog.Rel("edge", datalog.Var("X"), datalog.Var("Y")),
		datalog.Rel("edge", datalog.Var("Y"), datalog.Var("Z")),
	))
	fmt.Printf("%-20s %14s\n", "configuration", "fixpoint")
	fmt.Printf("%-20s %14s\n", "join index (default)", timeIt(func() {
		e, _ := datalog.NewEngine(st, prog)
		if err := e.Run(); err != nil {
			panic(err)
		}
	}).Round(time.Microsecond))
	fmt.Printf("%-20s %14s\n", "full scans", timeIt(func() {
		e, _ := datalog.NewEngine(st, prog, datalog.WithoutJoinIndex())
		if err := e.Run(); err != nil {
			panic(err)
		}
	}).Round(time.Microsecond))
	fmt.Println("shape check: the bound-argument hash index turns O(n²) nested loops into O(n) probes")
}
