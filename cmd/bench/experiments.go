package main

import (
	"fmt"
	"math/rand"
	"time"

	"videodb/internal/constraint"
	"videodb/internal/core"
	"videodb/internal/datalog"
	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
	"videodb/internal/temporal"
	"videodb/internal/video"
)

// --- E1–E3: Figures 1–3 -------------------------------------------------------

func runFigures() {
	durations := []float64{600, 1800, 3600}
	if *quick {
		durations = []float64{300}
	}
	fmt.Printf("%-8s %-22s %12s %10s %12s %12s %10s %8s\n",
		"length", "scheme", "annotations", "KiB", "build", "query", "precision", "recall")
	for _, dur := range durations {
		seq := video.Generate(video.GenConfig{
			Seed: 42, DurationSec: dur, NumObjects: 20, AvgShotSec: 6, Presence: 0.2,
		})
		type build struct {
			name string
			mk   func() video.Indexer
		}
		builds := []build{
			{"segmentation (10s)", func() video.Indexer { return video.NewSegmentation(seq, 10) }},
			{"stratification", func() video.Indexer { return video.NewStratification(seq) }},
			{"generalized-interval", func() video.Indexer { return video.NewGeneralizedIndexing(seq) }},
		}
		for _, b := range builds {
			buildTime := timeIt(func() { b.mk() })
			idx := b.mk()
			objs := seq.Objects()
			queryTime := timeIt(func() {
				for _, o := range objs {
					idx.Occurrences(o)
				}
			}) / time.Duration(len(objs))
			var p, r float64
			for _, o := range objs {
				pp, rr := video.AnswerQuality(idx.Occurrences(o), seq.Occurrences[o])
				p += pp
				r += rr
			}
			n := float64(len(objs))
			fmt.Printf("%-8.0f %-22s %12d %10.1f %12s %12s %10.3f %8.3f\n",
				dur, idx.Name(), idx.Annotations(), float64(idx.StorageBytes())/1024,
				buildTime.Round(time.Microsecond), queryTime.Round(time.Nanosecond),
				p/n, r/n)
		}
	}
}

// --- E4: the Rope example -------------------------------------------------------

func ropeDB() *core.DB {
	db := core.New()
	script := `
interval gi1 { duration: (t > 0 and t < 30), entities: {o1, o2, o3, o4},
               subject: "murder", victim: o1, murderer: {o2, o3} }.
interval gi2 { duration: (t > 40 and t < 80),
               entities: {o1, o2, o3, o4, o5, o6, o7, o8, o9},
               subject: "Giving a party", host: {o2, o3}, guest: {o5, o6, o7, o8, o9} }.
object o1 { name: "David", role: "Victim" }.
object o2 { name: "Philip", realname: "Farley Granger", role: "Murderer" }.
object o3 { name: "Brandon", realname: "John Dall", role: "Murderer" }.
object o4 { identification: "Chest" }.
object o5 { name: "Janet", realname: "Joan Chandler" }.
object o6 { name: "Kenneth", realname: "Douglas Dick" }.
object o7 { name: "Mr Kentley", realname: "Cedric Hardwicke" }.
object o8 { name: "Mrs Atwater", realname: "Constance Collier" }.
object o9 { name: "Rupert Cadell", realname: "James Stewart" }.
in(o1, o4, gi1).
in(o1, o4, gi2).
contains(G1, G2) :- Interval(G1), Interval(G2), G2.duration => G1.duration.
same_object_in(G1, G2, O) :- Interval(G1), Interval(G2), Object(O),
                             O in G1.entities, O in G2.entities.
`
	if _, err := db.LoadScript(script); err != nil {
		panic(err)
	}
	return db
}

func runRope() {
	db := ropeDB()
	queries := []struct {
		label   string
		query   string
		answers int
	}{
		{"q1 objects in gi1", "?- Object(O), O in gi1.entities.", 4},
		{"q2 intervals with o1", "?- Interval(G), o1 in G.entities.", 2},
		{"q3 o1 within (0,35)", "?- Interval(G), o1 in G.entities, G.duration => (t > 0 and t < 35).", 1},
		{"q4 o1,o5 together", "?- Interval(G), {o1, o5} subset G.entities.", 1},
		{"q5 pairs in 'in'", "?- Interval(G), in(O1, O2, G).", 2},
		{"q6 G with name David", `?- Interval(G), Object(O), O in G.entities, O.name = "David".`, 2},
		{"r1 contains", "?- contains(G1, G2).", 2},
		{"r2 same_object_in", "?- same_object_in(gi1, gi2, O).", 4},
	}
	fmt.Printf("%-22s %8s %8s %12s\n", "query", "answers", "expect", "latency")
	for _, q := range queries {
		rs, err := db.Query(q.query)
		if err != nil {
			panic(err)
		}
		lat := timeIt(func() {
			if _, err := db.Query(q.query); err != nil {
				panic(err)
			}
		})
		ok := " "
		if len(rs.Rows) != q.answers {
			ok = "!"
		}
		fmt.Printf("%-22s %8d %7d%s %12s\n", q.label, len(rs.Rows), q.answers, ok,
			lat.Round(time.Microsecond))
	}
}

// --- E5: PTIME scaling with dense-order constraints -------------------------------

// arithStore builds n generalized intervals with random durations and one
// entity each.
func arithStore(n int, seed int64) *store.Store {
	r := rand.New(rand.NewSource(seed))
	st := store.New()
	for i := 0; i < n; i++ {
		lo := r.Float64() * float64(n)
		oid := object.OID(fmt.Sprintf("g%06d", i))
		ent := object.OID(fmt.Sprintf("e%03d", i%97))
		st.Put(object.NewInterval(oid, interval.FromPairs(lo, lo+1+r.Float64()*10)).
			Set(object.AttrEntities, object.RefSet(ent)))
	}
	for i := 0; i < 97; i++ {
		st.Put(object.NewEntity(object.OID(fmt.Sprintf("e%03d", i))))
	}
	return st
}

func runArith() {
	sizes := []int{100, 300, 1000, 3000}
	if *quick {
		sizes = []int{100, 300}
	}
	// Linear-shaped program: select intervals inside a frame (one pass
	// over Interval with a constraint filter).
	frame := object.Temporal(interval.FromPairs(0, 500))
	within := datalog.NewProgram(datalog.NewRule(
		datalog.Rel("within", datalog.Var("G")),
		datalog.Interval(datalog.Var("G")),
		datalog.Entails(datalog.AttrOp(datalog.Var("G"), "duration"),
			datalog.TermOp(datalog.Const(frame))),
	))
	// Quadratic-shaped program: the paper's contains rule (all pairs).
	contains := datalog.NewProgram(datalog.NewRule(
		datalog.Rel("contains", datalog.Var("G1"), datalog.Var("G2")),
		datalog.Interval(datalog.Var("G1")),
		datalog.Interval(datalog.Var("G2")),
		datalog.Entails(datalog.AttrOp(datalog.Var("G2"), "duration"),
			datalog.AttrOp(datalog.Var("G1"), "duration")),
	))
	fmt.Printf("%-8s %14s %16s %14s\n", "n", "within (lin)", "contains (quad)", "tuples")
	for _, n := range sizes {
		st := arithStore(n, 7)
		tw := timeIt(func() {
			e, _ := datalog.NewEngine(st, within)
			if err := e.Run(); err != nil {
				panic(err)
			}
		})
		var tuples int
		tc := timeIt(func() {
			e, _ := datalog.NewEngine(st, contains)
			if err := e.Run(); err != nil {
				panic(err)
			}
			rows, _ := e.Rows("contains")
			tuples = len(rows)
		})
		fmt.Printf("%-8d %14s %16s %14d\n", n,
			tw.Round(time.Microsecond), tc.Round(time.Microsecond), tuples)
	}
	fmt.Println("shape check: within grows ~linearly, contains ~quadratically in n (PTIME, per Srivastava et al.)")
}

// --- E6: set-order constraints ------------------------------------------------------

func runSetOrder() {
	sizes := []int{10, 100, 1000, 10000}
	if *quick {
		sizes = []int{10, 100}
	}
	fmt.Printf("%-8s %14s %14s\n", "atoms", "satisfiable", "entails")
	for _, n := range sizes {
		r := rand.New(rand.NewSource(11))
		univ := make([]string, 50)
		for i := range univ {
			univ[i] = fmt.Sprintf("c%02d", i)
		}
		vars := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
		var conj constraint.SetConj
		for i := 0; i < n; i++ {
			switch r.Intn(4) {
			case 0:
				conj = append(conj, constraint.Member(univ[r.Intn(len(univ))], vars[r.Intn(len(vars))]))
			case 1:
				conj = append(conj, constraint.Subset(
					constraint.SetVar(vars[r.Intn(len(vars))]),
					constraint.SetLit(univ[:10+r.Intn(40)]...)))
			case 2:
				conj = append(conj, constraint.Subset(
					constraint.SetLit(univ[r.Intn(len(univ))]),
					constraint.SetVar(vars[r.Intn(len(vars))])))
			default:
				conj = append(conj, constraint.Subset(
					constraint.SetVar(vars[r.Intn(len(vars))]),
					constraint.SetVar(vars[r.Intn(len(vars))])))
			}
		}
		goal := constraint.SetConj{constraint.Member(univ[0], "A")}
		ts := timeIt(func() { conj.Satisfiable() })
		te := timeIt(func() { conj.Entails(goal) })
		fmt.Printf("%-8d %14s %14s\n", n, ts.Round(time.Microsecond), te.Round(time.Microsecond))
	}
	fmt.Println("shape check: closure is polynomial per conjunction (the DEXPTIME bound is in the")
	fmt.Println("program, not the solver — see E7's exponential object creation)")
}

// --- E7: constructive rules ----------------------------------------------------------

func runConstructive() {
	maxBase := 10
	if *quick {
		maxBase = 7
	}
	prog := datalog.NewProgram(datalog.NewRule(
		datalog.Rel("all", datalog.Concat(datalog.Var("G1"), datalog.Var("G2"))),
		datalog.Interval(datalog.Var("G1")),
		datalog.Interval(datalog.Var("G2")),
	))
	fmt.Printf("%-8s %10s %10s %10s %12s\n", "base", "created", "expect", "rounds", "time")
	for k := 2; k <= maxBase; k++ {
		st := store.New()
		for i := 0; i < k; i++ {
			st.Put(object.NewInterval(object.OID(fmt.Sprintf("b%02d", i)),
				interval.FromPairs(float64(10*i), float64(10*i+5))))
		}
		var created, rounds int
		elapsed := timeIt(func() {
			e, _ := datalog.NewEngine(st, prog, datalog.MaxCreated(1<<22))
			if err := e.Run(); err != nil {
				panic(err)
			}
			created = e.Stats().Created
			rounds = e.Stats().Rounds
		})
		expect := 1<<k - 1 - k
		fmt.Printf("%-8d %10d %10d %10d %12s\n", k, created, expect, rounds,
			elapsed.Round(time.Microsecond))
	}
	fmt.Println("shape check: the extended active domain closes at the union-closure (2^k - 1 objects),")
	fmt.Println("doubling per base interval — the exponential behind DEXPTIME — yet always terminates")
}

// --- E8: point-based vs interval-based -------------------------------------------------

func runPointInterval() {
	pairs := 2000
	if *quick {
		pairs = 200
	}
	r := rand.New(rand.NewSource(5))
	gs := make([]interval.Generalized, pairs)
	hs := make([]interval.Generalized, pairs)
	for i := range gs {
		gs[i] = randGen(r)
		hs[i] = randGen(r)
	}
	alg, con := temporal.Algebraic{}, temporal.Constraint{}
	type rel struct {
		name string
		a, c func(g, h interval.Generalized) bool
	}
	rels := []rel{
		{"before", alg.Before, con.Before},
		{"overlaps", alg.Overlaps, con.Overlaps},
		{"contains", alg.Contains, con.Contains},
		{"equals", alg.Equals, con.Equals},
	}
	fmt.Printf("%-10s %16s %16s %8s\n", "relation", "interval-based", "point-based", "agree")
	for _, rl := range rels {
		agree := true
		for i := range gs {
			if rl.a(gs[i], hs[i]) != rl.c(gs[i], hs[i]) {
				agree = false
			}
		}
		ta := timeIt(func() {
			for i := range gs {
				rl.a(gs[i], hs[i])
			}
		}) / time.Duration(pairs)
		tc := timeIt(func() {
			for i := range gs {
				rl.c(gs[i], hs[i])
			}
		}) / time.Duration(pairs)
		fmt.Printf("%-10s %16s %16s %8v\n", rl.name, ta, tc, agree)
	}
	fmt.Println("shape check: answers agree; the point-based route costs more per check but expresses")
	fmt.Println("every relation in one first-order language (the paper's declarativity argument)")
}

func randGen(r *rand.Rand) interval.Generalized {
	n := 1 + r.Intn(3)
	spans := make([]interval.Span, n)
	for i := range spans {
		lo := r.Float64() * 100
		spans[i] = interval.Closed(lo, lo+r.Float64()*20)
	}
	return interval.New(spans...)
}

// --- E9: naive vs semi-naive -----------------------------------------------------------

func runSeminaive() {
	sizes := []int{20, 50, 100}
	if *quick {
		sizes = []int{20, 50}
	}
	fmt.Printf("%-8s %14s %14s %12s %12s\n", "chain", "semi-naive", "naive", "firings(s)", "firings(n)")
	for _, n := range sizes {
		st := store.New()
		for i := 0; i < n; i++ {
			st.AddFact(store.NewFact("next",
				object.Str(fmt.Sprintf("n%04d", i)), object.Str(fmt.Sprintf("n%04d", i+1))))
		}
		prog := datalog.NewProgram(
			datalog.NewRule(datalog.Rel("reach", datalog.Var("X"), datalog.Var("Y")),
				datalog.Rel("next", datalog.Var("X"), datalog.Var("Y"))),
			datalog.NewRule(datalog.Rel("reach", datalog.Var("X"), datalog.Var("Z")),
				datalog.Rel("reach", datalog.Var("X"), datalog.Var("Y")),
				datalog.Rel("next", datalog.Var("Y"), datalog.Var("Z"))),
		)
		var fs, fn int
		ts := timeIt(func() {
			e, _ := datalog.NewEngine(st, prog)
			if err := e.Run(); err != nil {
				panic(err)
			}
			fs = e.Stats().Firings
		})
		tn := timeIt(func() {
			e, _ := datalog.NewEngine(st, prog, datalog.Naive())
			if err := e.Run(); err != nil {
				panic(err)
			}
			fn = e.Stats().Firings
		})
		fmt.Printf("%-8d %14s %14s %12d %12d\n", n,
			ts.Round(time.Microsecond), tn.Round(time.Microsecond), fs, fn)
	}
	fmt.Println("shape check: naive re-derives the whole extent every round (cubic-ish); semi-naive")
	fmt.Println("touches each derivation once (quadratic for transitive closure of a chain)")
}

// --- E10: index ablation -----------------------------------------------------------------

func runIndexes() {
	n := 20000
	if *quick {
		n = 2000
	}
	seq := video.Generate(video.GenConfig{
		Seed: 9, DurationSec: float64(n), NumObjects: 100, AvgShotSec: 5, Presence: 0.03,
	})
	build := func(opts ...store.Option) *core.DB {
		db := core.New(core.WithStore(store.NewWith(opts...)))
		if err := video.Populate(db, seq); err != nil {
			panic(err)
		}
		return db
	}
	full := build()
	noEnt := build(store.WithoutEntityIndex())
	noTree := build(store.WithoutTemporalIndex())

	memberQuery := "?- Interval(G), obj007 in G.entities."
	fmt.Printf("%-34s %14s\n", "configuration", "latency")
	cases := []struct {
		name string
		run  func()
	}{
		{"member query, all indexes", func() { mustQuery(full, memberQuery) }},
		{"member query, no entity index", func() { mustQuery(noEnt, memberQuery) }},
		{"member query, engine scan plan", func() {
			rs, err := fullQueryNoMemberIndex(full, memberQuery)
			if err != nil || rs == nil {
				panic(err)
			}
		}},
		{"overlap window, interval tree", func() {
			full.Store().IntervalsOverlapping(interval.Closed(100, 130))
		}},
		{"overlap window, linear scan", func() {
			noTree.Store().IntervalsOverlapping(interval.Closed(100, 130))
		}},
	}
	for _, c := range cases {
		fmt.Printf("%-34s %14s\n", c.name, timeIt(c.run).Round(time.Microsecond))
	}
	fmt.Println("shape check: the entity inverted index and the interval tree cut the membership and")
	fmt.Println("temporal workloads from linear scans to lookups (design decision 4 of DESIGN.md)")
}

func mustQuery(db *core.DB, q string) *core.ResultSet {
	rs, err := db.Query(q)
	if err != nil {
		panic(err)
	}
	return rs
}

func fullQueryNoMemberIndex(db *core.DB, q string) (*core.ResultSet, error) {
	scanDB := core.New(core.WithStore(db.Store()),
		core.WithEngineOptions(datalog.WithoutMemberIndex()))
	return scanDB.Query(q)
}
