package main

import (
	"fmt"
	"os"
	"time"

	"videodb/internal/lint"
)

// Lint timing: wall time per videolint pass over the whole tree, so
// analyzer cost stays visible as the tree grows. Type-checking (the
// Load) is shared by every pass and reported separately; each pass
// entry is the marginal cost of that analyzer alone.

type lintEntry struct {
	Pass       string  `json:"pass"`
	WallMs     float64 `json:"wall_ms"`
	Findings   int     `json:"findings"`   // diagnostics before suppression
	Suppressed int     `json:"suppressed"` // of which //videolint:ignore'd
}

// runLintJSON loads ./... once and times each analyzer over it. The
// bench binary runs from the repo root (go run ./cmd/bench), where the
// module's package patterns resolve.
func runLintJSON(report *benchReport) {
	t0 := time.Now()
	pkgs, err := lint.Load(".", "./...")
	if err != nil {
		// Outside the repo root (or with a broken build) there is nothing
		// to time; record why instead of failing the whole report.
		report.LintNote = fmt.Sprintf("lint timing skipped: %v", err)
		fmt.Fprintf(os.Stderr, "bench: %s\n", report.LintNote)
		return
	}
	report.LintLoadMs = float64(time.Since(t0).Microseconds()) / 1000

	for _, a := range lint.Analyzers() {
		start := time.Now()
		diags, err := lint.Run(pkgs, []*lint.Analyzer{a})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: lint %s: %v\n", a.Name, err)
			os.Exit(1)
		}
		suppressed := 0
		for _, d := range diags {
			if d.Suppressed {
				suppressed++
			}
		}
		entry := lintEntry{
			Pass:       a.Name,
			WallMs:     float64(time.Since(start).Microseconds()) / 1000,
			Findings:   len(diags),
			Suppressed: suppressed,
		}
		report.Lint = append(report.Lint, entry)
		fmt.Printf("%-40s %-24s %11.1f ms      %d findings (%d suppressed)\n",
			"Lint/"+a.Name, "videolint", entry.WallMs, entry.Findings, entry.Suppressed)
	}
	report.LintNote = "wall time per videolint pass over ./... after one shared type-check load " +
		"(lint_load_ms); findings counts diagnostics before suppression"
}
