// Command bench runs the reproduction experiments E1–E10 of DESIGN.md and
// prints one table per experiment. Each experiment maps to a figure or a
// complexity claim of the paper; EXPERIMENTS.md records a reference run
// and compares it with the paper's statements.
//
// Usage:
//
//	bench [-experiment all|figures|rope|arith|setorder|constructive|pointinterval|seminaive|indexes|
//	       pruning|parallel|joinindex|streaming|plancache|disk|streamsub]
//	      [-quick]
//	bench -json [-out BENCH_PR9.json]
//
// With -json the binary skips the tables and instead re-measures the
// acceptance benchmarks (E5, E8, E13 workloads) under the default engine
// configuration and each ablation, writing machine-readable ns/op,
// allocs/op and solver-memo hit rates to the -out file.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"
)

var quick = flag.Bool("quick", false, "smaller sizes for a fast smoke run")

func main() {
	exp := flag.String("experiment", "all", "which experiment to run")
	jsonMode := flag.Bool("json", false, "write machine-readable acceptance benchmarks and exit")
	jsonOut := flag.String("out", "BENCH_PR9.json", "output path for -json")
	flag.Parse()

	if *jsonMode {
		runJSON(*jsonOut)
		return
	}

	experiments := []struct {
		name string
		desc string
		run  func()
	}{
		{"figures", "E1–E3: indexing schemes of Figures 1–3", runFigures},
		{"rope", "E4: the Rope example queries (§5.2, §6.1, §6.2)", runRope},
		{"arith", "E5: PTIME data complexity with dense-order constraints", runArith},
		{"setorder", "E6: set-order constraint solving", runSetOrder},
		{"constructive", "E7: constructive rules and the extended active domain", runConstructive},
		{"pointinterval", "E8: point-based vs interval-based temporal queries", runPointInterval},
		{"seminaive", "E9: naive vs semi-naive fixpoint evaluation", runSeminaive},
		{"indexes", "E10: index ablation", runIndexes},
		{"pruning", "E11: query-reachability pruning", runPruning},
		{"parallel", "E12: parallel rule evaluation", runParallel},
		{"joinindex", "E13: join index ablation", runJoinIndex},
		{"streaming", "E14: streaming executor vs materializing evaluator", runStreaming},
		{"plancache", "E15: cross-query plan cache cold vs warm", runPlanCache},
		{"disk", "E16: persistent segment store vs WAL backend", runDisk},
		{"streamsub", "E17: ingest-to-notification latency of live subscriptions", runStreamSub},
	}

	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		fmt.Printf("=== %s — %s ===\n", e.name, e.desc)
		start := time.Now()
		e.run()
		fmt.Printf("(%s)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// timeIt runs fn repeatedly until it has consumed ~minDuration and
// returns the mean duration per run.
func timeIt(fn func()) time.Duration {
	const minDuration = 20 * time.Millisecond
	fn() // warm up
	var n int
	start := time.Now()
	for time.Since(start) < minDuration {
		fn()
		n++
	}
	return time.Since(start) / time.Duration(n)
}
