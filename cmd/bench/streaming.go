package main

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"videodb/internal/core"
	"videodb/internal/datalog"
	"videodb/internal/object"
	"videodb/internal/store"
)

// E14–E15: ablations of the streaming executor and the cross-query plan
// cache. E14 compares the iterator pipeline with interned row keys (the
// default) against the materializing evaluator with string row keys
// (WithoutStreaming) on large-join workloads; E15 compares cold
// (compile-per-query) against warm (plan-cache hit) query latency.

// streamEntry is one (workload, executor) measurement of the E14
// streaming ablation.
type streamEntry struct {
	Bench       string  `json:"bench"`
	Config      string  `json:"config"` // "streaming" or "materializing"
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// streamImprovement summarizes one workload: how much faster and how much
// lighter the streaming executor is than the materializing ablation.
type streamImprovement struct {
	Bench            string  `json:"bench"`
	SpeedupX         float64 `json:"speedup_x"`         // materializing_ns / streaming_ns
	AllocsReduction  float64 `json:"allocs_reduction"`  // 1 - streaming/materializing
	BytesReduction   float64 `json:"bytes_reduction"`   // 1 - streaming/materializing
	MeetsAcceptance  bool    `json:"meets_acceptance"`  // ≥1.5× speedup and ≥40% fewer allocations
}

// planCacheEntry is one plan-cache latency measurement: cold compiles the
// program on every query (cache disabled), warm serves the compiled
// artifact from the cross-query cache.
type planCacheEntry struct {
	Bench       string  `json:"bench"`
	Mode        string  `json:"mode"` // "cold_compile_per_query" or "warm_cache_hit"
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// streamWorkloads are the E14 large-join workloads. The dense graph is
// the duplicate-heavy case (each hop2 pair is derivable ~16 ways, so most
// firings are duplicates the streaming head path rejects with one
// fixed-width map probe and zero allocations); the closure iterates the
// recursive TP operator for ~n rounds; hop3 is a wide three-way join.
func streamWorkloads() []struct {
	name string
	st   *store.Store
	prog datalog.Program
} {
	edge := func(i, j, n int) store.Fact {
		return store.NewFact("edge",
			object.Str(fmt.Sprintf("n%03d", i)), object.Str(fmt.Sprintf("n%03d", j%n)))
	}
	dense := store.New()
	for i := 0; i < 200; i++ {
		for d := 1; d <= 16; d++ {
			dense.AddFact(edge(i, i+d*7, 200))
		}
	}
	ring := store.New()
	for i := 0; i < 120; i++ {
		ring.AddFact(edge(i, i+1, 120))
	}
	sparse := store.New()
	for i := 0; i < 300; i++ {
		sparse.AddFact(edge(i, i+7, 300))
	}
	hop2 := datalog.NewProgram(datalog.NewRule(
		datalog.Rel("hop2", datalog.Var("X"), datalog.Var("Z")),
		datalog.Rel("edge", datalog.Var("X"), datalog.Var("Y")),
		datalog.Rel("edge", datalog.Var("Y"), datalog.Var("Z")),
	))
	closure := datalog.NewProgram(
		datalog.NewRule(datalog.Rel("reach", datalog.Var("X"), datalog.Var("Y")),
			datalog.Rel("edge", datalog.Var("X"), datalog.Var("Y"))),
		datalog.NewRule(datalog.Rel("reach", datalog.Var("X"), datalog.Var("Z")),
			datalog.Rel("reach", datalog.Var("X"), datalog.Var("Y")),
			datalog.Rel("edge", datalog.Var("Y"), datalog.Var("Z"))),
	)
	hop3 := datalog.NewProgram(datalog.NewRule(
		datalog.Rel("hop3", datalog.Var("X"), datalog.Var("W")),
		datalog.Rel("edge", datalog.Var("X"), datalog.Var("Y")),
		datalog.Rel("edge", datalog.Var("Y"), datalog.Var("Z")),
		datalog.Rel("edge", datalog.Var("Z"), datalog.Var("W")),
	))
	return []struct {
		name string
		st   *store.Store
		prog datalog.Program
	}{
		{"E14StreamingJoin/dense_hop2/n=200,deg=16", dense, hop2},
		{"E14StreamingJoin/closure/n=120", ring, closure},
		{"E14StreamingJoin/hop3/n=300", sparse, hop3},
	}
}

// planCacheProgram builds a DB whose compiled program is wide enough for
// compilation cost to be visible next to evaluation: a 40-rule reachable
// chain over a small fact base.
func planCacheDB(opts ...core.Option) (*core.DB, string) {
	db := core.New(opts...)
	if err := db.DefineRule("p0(X, Y) :- edge(X, Y)"); err != nil {
		panic(err)
	}
	for i := 1; i <= 40; i++ {
		if err := db.DefineRule(fmt.Sprintf("p%d(X, Y) :- p%d(X, Y)", i, i-1)); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 30; i++ {
		if err := db.Relate("edge",
			object.OID(fmt.Sprintf("a%02d", i)), object.OID(fmt.Sprintf("a%02d", (i+1)%30))); err != nil {
			panic(err)
		}
	}
	return db, "?- p40(X, Y)"
}

// runStreaming is the table-mode E14 experiment.
func runStreaming() {
	fmt.Printf("%-44s %-14s %14s\n", "workload", "executor", "fixpoint")
	for _, w := range streamWorkloads() {
		for _, cfg := range []struct {
			label string
			opts  []datalog.Option
		}{
			{"streaming", nil},
			{"materializing", []datalog.Option{datalog.WithoutStreaming()}},
		} {
			t := timeIt(func() {
				e, err := datalog.NewEngine(w.st, w.prog, cfg.opts...)
				if err != nil {
					panic(err)
				}
				if err := e.Run(); err != nil {
					panic(err)
				}
			})
			fmt.Printf("%-44s %-14s %14s\n", w.name, cfg.label, t.Round(time.Microsecond))
		}
	}
	fmt.Println("shape check: the pull pipeline with interned row keys wins most where duplicate")
	fmt.Println("firings dominate — its head dedup is one fixed-width map probe, no allocation")
}

// runPlanCache is the table-mode E15 experiment.
func runPlanCache() {
	warm, q := planCacheDB()
	cold, _ := planCacheDB(core.WithoutQueryPlanCache())
	if _, err := warm.Query(q); err != nil { // prime the cache
		panic(err)
	}
	// GC before each side so the debt from building both DBs doesn't land
	// on whichever configuration is measured first.
	runtime.GC()
	coldT := timeIt(func() { mustQuery(cold, q) })
	runtime.GC()
	warmT := timeIt(func() { mustQuery(warm, q) })
	fmt.Printf("%-36s %14s\n", "configuration (41-rule chain)", "query latency")
	fmt.Printf("%-36s %14s\n", "warm plan cache (default)", warmT.Round(time.Microsecond))
	fmt.Printf("%-36s %14s\n", "compile per query (cache disabled)", coldT.Round(time.Microsecond))
	st := warm.PlanCacheStats()
	fmt.Printf("cache stats: %d hits, %d misses, %d entries\n", st.Hits, st.Misses, st.Entries)
	fmt.Println("shape check: repeated queries skip parsing-adjacent work (stratify, plan, compile)")
}

// runStreamingJSON measures the E14 ablation pairs and the E15 plan-cache
// latency split and appends them to the report.
func runStreamingJSON(report *benchReport) {
	for _, w := range streamWorkloads() {
		var pair [2]streamEntry
		for i, cfg := range []struct {
			label string
			opts  []datalog.Option
		}{
			{"streaming", nil},
			{"materializing", []datalog.Option{datalog.WithoutStreaming()}},
		} {
			res, _ := measureEngine(w.st, w.prog, cfg.opts...)
			pair[i] = streamEntry{
				Bench:       w.name,
				Config:      cfg.label,
				NsPerOp:     float64(res.NsPerOp()),
				BytesPerOp:  res.AllocedBytesPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				Iterations:  res.N,
			}
			fmt.Printf("%-44s %-24s %14.0f ns/op %10d allocs/op\n",
				w.name, cfg.label, pair[i].NsPerOp, pair[i].AllocsPerOp)
		}
		report.Streaming = append(report.Streaming, pair[0], pair[1])
		imp := streamImprovement{
			Bench:           w.name,
			SpeedupX:        pair[1].NsPerOp / pair[0].NsPerOp,
			AllocsReduction: 1 - float64(pair[0].AllocsPerOp)/float64(pair[1].AllocsPerOp),
			BytesReduction:  1 - float64(pair[0].BytesPerOp)/float64(pair[1].BytesPerOp),
		}
		imp.MeetsAcceptance = imp.SpeedupX >= 1.5 && imp.AllocsReduction >= 0.40
		report.StreamingVs = append(report.StreamingVs, imp)
	}
	report.StreamingNote = "E14 compares the default streaming executor (pull iterators, interned row keys, " +
		"store pushdown) against the materializing ablation (WithoutStreaming: recursive join kernel, " +
		"string row keys); speedup_x is materializing/streaming, reductions are 1 - streaming/materializing"

	// E15: plan-cache cold/warm split. The warm DB serves every query from
	// the cross-query cache (hits accumulate in PlanCacheStats and the
	// videodb_plan_cache_hits_total counter); the cold DB recompiles the
	// 41-rule program per query.
	warm, q := planCacheDB()
	cold, _ := planCacheDB(core.WithoutQueryPlanCache())
	if _, err := warm.Query(q); err != nil {
		fmt.Fprintf(os.Stderr, "bench: plancache: %v\n", err)
		os.Exit(1)
	}
	addPC := func(mode string, db *core.DB) {
		res, _ := measureFn(func(int) { mustQuery(db, q) })
		report.PlanCache = append(report.PlanCache, planCacheEntry{
			Bench:       "E15PlanCache/chain41",
			Mode:        mode,
			NsPerOp:     float64(res.NsPerOp()),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			Iterations:  res.N,
		})
		fmt.Printf("%-44s %-24s %14.0f ns/op %10d allocs/op\n",
			"E15PlanCache/chain41", mode,
			float64(res.NsPerOp()), res.AllocsPerOp())
	}
	addPC("warm_cache_hit", warm)
	addPC("cold_compile_per_query", cold)
	st := warm.PlanCacheStats()
	report.PlanCacheStats = &st
	report.PlanCacheNsRatio = report.PlanCache[0].NsPerOp / report.PlanCache[1].NsPerOp
	report.PlanCacheNote = "warm_cache_hit serves the compiled program from the cross-query plan cache " +
		"(each op is one hit in videodb_plan_cache_hits_total), cold_compile_per_query stratifies, plans " +
		"and compiles the 41-rule program on every query (WithoutQueryPlanCache); ratio < 1 means the cache wins"

	// Guardrail: the report must demonstrate the acceptance thresholds.
	ok := false
	var lines []string
	for _, imp := range report.StreamingVs {
		lines = append(lines, fmt.Sprintf("  %s: %.2fx, -%.0f%% allocs",
			imp.Bench, imp.SpeedupX, imp.AllocsReduction*100))
		if imp.MeetsAcceptance {
			ok = true
		}
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "bench: no E14 workload met the acceptance thresholds (>=1.5x speedup, >=40%% alloc reduction):\n%s\n",
			strings.Join(lines, "\n"))
		os.Exit(1)
	}
	if report.PlanCacheNsRatio >= 1 {
		fmt.Fprintf(os.Stderr, "bench: warm plan-cache queries are not faster than cold compiles (ratio %.2f)\n",
			report.PlanCacheNsRatio)
		os.Exit(1)
	}
	if report.PlanCacheStats.Hits == 0 {
		fmt.Fprintf(os.Stderr, "bench: warm run recorded no plan-cache hits\n")
		os.Exit(1)
	}
}
