package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"videodb/internal/core"
	"videodb/internal/server"
	"videodb/internal/video"
)

// E17: ingest-to-notification latency of the subscription subsystem. A
// synthetic broadcast is replayed shot by shot into a live HTTP server
// (the videogen -stream path) while one SSE subscriber holds the
// standing query ?- appears_with(X, Y, S). For every batch that changes
// the answer we measure the wall time from the /v1/script POST starting
// to the subscriber's accumulated state matching the oracle — a local
// database fed the same batches. At quiescence the accumulated rows
// must equal the one-shot /v1/query answer exactly (the differential
// oracle), and nothing may have been dropped: the subscriber keeps up,
// so the bounded queue never overflows.

// streamSubReport is the machine-readable E17 record.
type streamSubReport struct {
	Bench        string  `json:"bench"`
	Batches      int     `json:"batches"`
	Measured     int     `json:"measured_batches"` // batches that changed the answer
	Rows         int     `json:"final_rows"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MeanMs       float64 `json:"mean_ms"`
	MaxMs        float64 `json:"max_ms"`
	DeltasPlus   uint64  `json:"deltas_plus"`
	DeltasMinus  uint64  `json:"deltas_minus"`
	Dropped      uint64  `json:"dropped"`
	Resyncs      uint64  `json:"resyncs"`
	Converged    bool    `json:"converged"` // accumulated == one-shot answer
	ZeroDrops    bool    `json:"zero_drops_below_rate_limit"`
	Note         string  `json:"note"`
}

const streamSubGoal = "?- appears_with(X, Y, S)"

// streamSubConfig sizes the replay: ~100 shots (quick: ~25).
func streamSubConfig() video.GenConfig {
	cfg := video.GenConfig{Seed: 17, DurationSec: 600, NumObjects: 8, AvgShotSec: 6, Presence: 0.3}
	if *quick {
		cfg.DurationSec = 150
	}
	return cfg
}

// sseAccumulator tracks the subscriber's view of the answer, keyed by
// the rows' wire JSON so oracle rows compare byte-for-byte.
type sseAccumulator struct {
	rows map[string]bool
}

type sseWireEvent struct {
	Seq  uint64            `json:"seq"`
	Kind string            `json:"kind"`
	Sign int               `json:"sign,omitempty"`
	Row  []json.RawMessage `json:"row,omitempty"`
	Rows [][]json.RawMessage `json:"rows,omitempty"`
}

func wireRowKey(row []json.RawMessage) string {
	parts := make([]string, len(row))
	for i, r := range row {
		parts[i] = string(r)
	}
	return strings.Join(parts, "\x1f")
}

func (a *sseAccumulator) apply(ev sseWireEvent) {
	switch ev.Kind {
	case "snapshot":
		a.rows = make(map[string]bool, len(ev.Rows))
		for _, row := range ev.Rows {
			a.rows[wireRowKey(row)] = true
		}
	case "delta":
		if a.rows == nil {
			a.rows = make(map[string]bool)
		}
		k := wireRowKey(ev.Row)
		if ev.Sign > 0 {
			a.rows[k] = true
		} else {
			delete(a.rows, k)
		}
	}
}

// oracleRowKeys renders a local one-shot answer with the same keying as
// the wire rows.
func oracleRowKeys(db *core.DB, goal string) (map[string]bool, error) {
	rs, err := db.Query(goal)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(rs.Rows))
	for _, row := range rs.Rows {
		raw := make([]json.RawMessage, len(row))
		for i, v := range row {
			b, err := json.Marshal(v)
			if err != nil {
				return nil, err
			}
			raw[i] = b
		}
		out[wireRowKey(raw)] = true
	}
	return out, nil
}

func sameRowSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// streamSubRun replays the broadcast and measures per-batch latency.
func streamSubRun() (streamSubReport, error) {
	rep := streamSubReport{Bench: "E17IngestToNotify/appears_with"}
	seq := video.Generate(streamSubConfig())
	batches := video.StreamBatches(seq)
	rep.Batches = len(batches)

	db := core.New()
	srv := server.New(db)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	oracle := core.New()
	defer oracle.Close()

	// Subscribe before any data arrives. A generous queue keeps the
	// experiment below the overflow threshold: E17's claim is zero drops
	// for a consumer that keeps up, not survival of a slow one.
	subURL := ts.URL + "/v1/subscribe?queue=4096&goal=" + url.QueryEscape(streamSubGoal)
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, subURL, nil)
	if err != nil {
		return rep, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return rep, fmt.Errorf("subscribe: status %d: %s", resp.StatusCode, msg)
	}

	// Reader goroutine: applies frames and reports state generations, so
	// the main loop can await convergence without polling the parser.
	type stateMsg struct {
		rows map[string]bool
		err  error
	}
	states := make(chan stateMsg, 64)
	go func() {
		defer close(states)
		br := bufio.NewReader(resp.Body)
		var acc sseAccumulator
		for {
			ev, err := server.ReadSSE(br)
			if err != nil {
				states <- stateMsg{err: err}
				return
			}
			if ev.Event == "close" {
				states <- stateMsg{err: fmt.Errorf("subscription closed by server: %s", ev.Data)}
				return
			}
			var wire sseWireEvent
			if err := json.Unmarshal([]byte(ev.Data), &wire); err != nil {
				states <- stateMsg{err: fmt.Errorf("bad frame %q: %v", ev.Data, err)}
				return
			}
			acc.apply(wire)
			snapshot := make(map[string]bool, len(acc.rows))
			for k := range acc.rows {
				snapshot[k] = true
			}
			states <- stateMsg{rows: snapshot}
		}
	}()

	// awaitRows blocks until the subscriber's state matches want.
	current := make(map[string]bool)
	awaitRows := func(want map[string]bool, deadline time.Duration) error {
		if sameRowSet(current, want) {
			return nil
		}
		timer := time.NewTimer(deadline)
		defer timer.Stop()
		for {
			select {
			case msg, ok := <-states:
				if !ok {
					return fmt.Errorf("sse stream ended")
				}
				if msg.err != nil {
					return msg.err
				}
				current = msg.rows
				if sameRowSet(current, want) {
					return nil
				}
			case <-timer.C:
				return fmt.Errorf("timed out waiting for %d rows (have %d)", len(want), len(current))
			}
		}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	post := func(batch string) error {
		body, err := json.Marshal(map[string]string{"script": batch})
		if err != nil {
			return err
		}
		presp, err := client.Post(ts.URL+"/v1/script", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer presp.Body.Close()
		if presp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(presp.Body, 4096))
			return fmt.Errorf("script: status %d: %s", presp.StatusCode, msg)
		}
		io.Copy(io.Discard, presp.Body)
		return nil
	}

	// Wait for the initial (empty) snapshot so measurement starts from an
	// attached subscriber.
	if err := awaitRows(map[string]bool{}, 10*time.Second); err != nil {
		return rep, fmt.Errorf("initial snapshot: %w", err)
	}

	var latencies []time.Duration
	for i, batch := range batches {
		if _, err := oracle.LoadScript(batch); err != nil {
			return rep, fmt.Errorf("oracle batch %d: %w", i, err)
		}
		want, err := oracleRowKeys(oracle, streamSubGoal)
		if err != nil {
			return rep, err
		}
		changed := !sameRowSet(current, want)
		start := time.Now()
		if err := post(batch); err != nil {
			return rep, fmt.Errorf("batch %d: %w", i, err)
		}
		if err := awaitRows(want, 30*time.Second); err != nil {
			return rep, fmt.Errorf("batch %d: %w", i, err)
		}
		if changed {
			latencies = append(latencies, time.Since(start))
		}
	}
	rep.Measured = len(latencies)
	rep.Rows = len(current)

	// Differential oracle: the accumulated state equals the server's own
	// one-shot answer for the same goal.
	want, err := oracleRowKeys(db, streamSubGoal)
	if err != nil {
		return rep, err
	}
	rep.Converged = sameRowSet(current, want)

	totals := db.SubscriptionStats()
	rep.DeltasPlus = totals.DeltasPlus
	rep.DeltasMinus = totals.DeltasMinus
	rep.Dropped = totals.Dropped
	rep.Resyncs = totals.Resyncs
	rep.ZeroDrops = totals.Dropped == 0

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	if n := len(latencies); n > 0 {
		var sum time.Duration
		for _, d := range latencies {
			sum += d
		}
		rep.P50Ms = ms(latencies[n/2])
		rep.P99Ms = ms(latencies[(n*99)/100])
		rep.MeanMs = ms(sum / time.Duration(n))
		rep.MaxMs = ms(latencies[n-1])
	}
	rep.Note = "per-batch wall time from the /v1/script POST starting until the SSE subscriber's " +
		"accumulated state matches a local oracle fed the same batch; converged compares the final " +
		"accumulated state with the server's one-shot answer; zero_drops holds because the consumer " +
		"keeps up with the unpaced replay (no rate limit, queue 4096)"
	return rep, nil
}

// runStreamSub is the table-mode E17 experiment.
func runStreamSub() {
	rep, err := streamSubRun()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: streamsub: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%-44s %10s %10s %10s %10s\n", "replay", "batches", "p50", "p99", "max")
	fmt.Printf("%-44s %10d %9.2fms %9.2fms %9.2fms\n",
		rep.Bench, rep.Measured, rep.P50Ms, rep.P99Ms, rep.MaxMs)
	fmt.Printf("final rows %d, +%d/-%d deltas, %d dropped, %d resyncs, converged=%v\n",
		rep.Rows, rep.DeltasPlus, rep.DeltasMinus, rep.Dropped, rep.Resyncs, rep.Converged)
	fmt.Println("shape check: notification lags ingest by one incremental maintenance pass, not a recompute")
}

// runStreamSubJSON attaches the E17 record to the report and enforces
// its acceptance criteria: exact convergence with the one-shot answer
// and zero dropped deltas.
func runStreamSubJSON(report *benchReport) {
	rep, err := streamSubRun()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: streamsub: %v\n", err)
		os.Exit(1)
	}
	report.IngestLatency = &rep
	fmt.Printf("%-44s %-24s %10.2f ms p50 %10.2f ms p99  %d batches\n",
		rep.Bench, "sse_subscriber", rep.P50Ms, rep.P99Ms, rep.Measured)
	if !rep.Converged {
		fmt.Fprintf(os.Stderr, "bench: E17 subscriber did not converge to the one-shot answer\n")
		os.Exit(1)
	}
	if !rep.ZeroDrops {
		fmt.Fprintf(os.Stderr, "bench: E17 dropped %d deltas below the rate limit\n", rep.Dropped)
		os.Exit(1)
	}
}
