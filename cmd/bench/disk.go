package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"videodb/internal/core"
	"videodb/internal/object"
)

// E16: the persistent segment store. Two claims back the backend:
//
//  1. Restart cost is O(active set), not O(history). The WAL backend
//     replays every logged write on open, so a churny corpus (adds that
//     were later deleted) pays for its past; the segment backend opens
//     from the manifest and reads only segment indexes — the fact blocks
//     stay on disk until a query touches them.
//
//  2. Query latency over segments approaches memory once the block
//     cache is warm; the cold run bounds the worst case (every block
//     read, CRC-checked and decoded).
//
// Table mode prints the comparison; -json writes it to the report so CI
// tracks the restart and cold/warm ratios.

type diskEntry struct {
	Bench      string  `json:"bench"`
	Config     string  `json:"config"`
	NsPerOp    float64 `json:"ns_per_op"`
	Facts      int     `json:"facts"`
	Iterations int     `json:"iterations"`
}

// diskCorpus writes n live chain facts plus n churned (added then
// deleted) facts through the given DB, so the write history is 3n
// records but the active set is n.
func diskCorpus(db *core.DB, n int) error {
	for i := 0; i < n; i++ {
		a := object.OID(fmt.Sprintf("v%06d", i))
		b := object.OID(fmt.Sprintf("v%06d", i+1))
		if err := db.Relate("next", a, b); err != nil {
			return err
		}
		tmp := object.OID(fmt.Sprintf("tmp%06d", i))
		if err := db.Relate("scratch", tmp, a); err != nil {
			return err
		}
		if _, err := db.Unrelate("scratch", tmp, a); err != nil {
			return err
		}
	}
	return nil
}

// diskSizes returns the corpus size for the current -quick setting.
func diskSizes() int {
	if *quick {
		return 2000
	}
	return 20000
}

type diskResult struct {
	facts       int
	walOpen     time.Duration
	segOpen     time.Duration
	memQuery    time.Duration
	segColdQ    time.Duration
	segWarmQ    time.Duration
	segStats    string
	boundedMiss bool
}

// runDiskOnce builds both corpora and measures restart and query cost.
func runDiskOnce() (diskResult, error) {
	var out diskResult
	n := diskSizes()
	out.facts = n
	base, err := os.MkdirTemp("", "videodb-e16-*")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(base)
	walDir := filepath.Join(base, "wal")
	segDir := filepath.Join(base, "seg")
	const probe = "?- next(v000100, Y)"

	// WAL backend: build, close, time the replay on reopen.
	wdb, err := core.Open(walDir)
	if err != nil {
		return out, err
	}
	if err := diskCorpus(wdb, n); err != nil {
		return out, err
	}
	if err := wdb.Close(); err != nil {
		return out, err
	}
	start := time.Now()
	wdb, err = core.Open(walDir)
	if err != nil {
		return out, err
	}
	out.walOpen = time.Since(start)
	out.memQuery = timeIt(func() {
		if _, err := wdb.Query(probe); err != nil {
			panic(err)
		}
	})
	if err := wdb.Close(); err != nil {
		return out, err
	}

	// Segment backend: build, close (final flush), time the manifest
	// open, then a cold query (empty block cache) and warm repeats.
	sdb, err := core.OpenSegment(segDir)
	if err != nil {
		return out, err
	}
	if err := diskCorpus(sdb, n); err != nil {
		return out, err
	}
	if err := sdb.Close(); err != nil {
		return out, err
	}
	start = time.Now()
	sdb, err = core.OpenSegment(segDir)
	if err != nil {
		return out, err
	}
	out.segOpen = time.Since(start)
	coldStart := time.Now()
	if _, err := sdb.Query(probe); err != nil {
		return out, err
	}
	out.segColdQ = time.Since(coldStart)
	out.segWarmQ = timeIt(func() {
		if _, err := sdb.Query(probe); err != nil {
			panic(err)
		}
	})
	bs := sdb.Store().BackendStats()
	out.segStats = fmt.Sprintf("segments=%d segmentFacts=%d cacheBytes=%d/%d hits=%d misses=%d",
		bs.Segments, bs.SegmentFacts, bs.CacheBytes, bs.CacheBudget, bs.CacheHits, bs.CacheMisses)
	out.boundedMiss = bs.CacheBytes <= bs.CacheBudget
	if err := sdb.Close(); err != nil {
		return out, err
	}
	return out, nil
}

// runDisk is the table-mode E16 experiment.
func runDisk() {
	res, err := runDiskOnce()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: disk: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("corpus: %d live facts, %d total logged writes (2/3 churned away)\n", res.facts, 3*res.facts)
	fmt.Printf("%-44s %12v\n", "restart/wal_replay", res.walOpen.Round(time.Microsecond))
	fmt.Printf("%-44s %12v\n", "restart/segment_manifest", res.segOpen.Round(time.Microsecond))
	fmt.Printf("%-44s %12v\n", "query/mem", res.memQuery.Round(time.Microsecond))
	fmt.Printf("%-44s %12v\n", "query/segment_cold", res.segColdQ.Round(time.Microsecond))
	fmt.Printf("%-44s %12v\n", "query/segment_warm", res.segWarmQ.Round(time.Microsecond))
	fmt.Printf("%s\n", res.segStats)
	if res.segOpen < res.walOpen {
		fmt.Printf("restart speedup: %.1fx (manifest open vs full WAL replay)\n",
			float64(res.walOpen)/float64(res.segOpen))
	}
}

// runDiskJSON adds the E16 measurements to the -json report.
func runDiskJSON(report *benchReport) {
	res, err := runDiskOnce()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: disk: %v\n", err)
		os.Exit(1)
	}
	add := func(bench, config string, d time.Duration) {
		report.Disk = append(report.Disk, diskEntry{
			Bench:   bench,
			Config:  config,
			NsPerOp: float64(d.Nanoseconds()),
			Facts:   res.facts,
		})
		fmt.Printf("%-40s %-24s %14.0f ns/op\n", bench, config, float64(d.Nanoseconds()))
	}
	add("E16DiskRestart", "wal_replay", res.walOpen)
	add("E16DiskRestart", "segment_manifest", res.segOpen)
	add("E16DiskQuery", "mem", res.memQuery)
	add("E16DiskQuery", "segment_cold", res.segColdQ)
	add("E16DiskQuery", "segment_warm", res.segWarmQ)
	report.DiskRestartRatio = float64(res.segOpen) / float64(res.walOpen)
	report.DiskNote = "E16: restart cost opens an existing store (wal_replay re-applies every logged write, " +
		"segment_manifest reads the manifest + segment indexes only; ratio = segment/wal, < 1 means segments win); " +
		"query cost is one bound probe over " + fmt.Sprint(res.facts) + " live facts — " +
		"segment_cold starts with an empty block cache, segment_warm repeats it; " + res.segStats
	if !res.boundedMiss {
		fmt.Fprintf(os.Stderr, "bench: disk: block cache exceeded its budget: %s\n", res.segStats)
		os.Exit(1)
	}
}
