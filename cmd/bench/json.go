package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"videodb/internal/constraint"
	"videodb/internal/core"
	"videodb/internal/datalog"
	"videodb/internal/datalog/analyze"
	"videodb/internal/interval"
	"videodb/internal/object"
	"videodb/internal/store"
	"videodb/internal/temporal"
)

// -json mode: machine-readable acceptance benchmarks for the compiled-plan
// + constraint-memo engine. Re-runs the acceptance-relevant workloads of
// BenchmarkE5ArithScaling, BenchmarkE8PointVsInterval and
// BenchmarkE13JoinIndex under the default configuration and under each
// ablation (WithoutPlanCache, WithoutConstraintMemo, both = seed-equivalent
// evaluation strategy), and writes ns/op, B/op, allocs/op and the solver
// memo hit rate for every (workload, configuration) pair. A static seed
// baseline — `go test -bench` output measured at the seed commit on the
// reference host — is embedded for the improvement ratios.

type benchResult struct {
	Bench       string  `json:"bench"`
	Config      string  `json:"config"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MemoHitRate float64 `json:"memo_hit_rate"`
	Iterations  int     `json:"iterations"`
}

type seedEntry struct {
	Bench       string  `json:"bench"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type improvement struct {
	Bench       string  `json:"bench"`
	NsRatio     float64 `json:"ns_ratio"`     // current/seed; < 0.8 means ≥20% faster
	AllocsRatio float64 `json:"allocs_ratio"` // current/seed; < 0.8 means ≥20% fewer allocations
}

// profileEntry is one profiled run of an acceptance workload: the
// engine's own EXPLAIN ANALYZE record (per-rule and per-round wall time,
// firings, derived tuples, solver-budget and memo consumption).
type profileEntry struct {
	Bench       string           `json:"bench"`
	Rounds      int              `json:"rounds"`
	SolverSteps int64            `json:"solver_steps"`
	MemoHits    uint64           `json:"memo_hits"`
	MemoMisses  uint64           `json:"memo_misses"`
	Profile     *datalog.Profile `json:"profile"`
}

// vetBench is one static-analysis timing: a full db.Vet pass (parse +
// all analyzer passes, solver included) over one script.
type vetBench struct {
	Bench       string  `json:"bench"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Diagnostics int     `json:"diagnostics"`
}

// viewBenchEntry is one view-maintenance timing: the per-mutation cost
// of serving a materialized view either by incremental maintenance or by
// recomputing the goal from scratch.
type viewBenchEntry struct {
	Bench       string  `json:"bench"`
	Mode        string  `json:"mode"` // "incremental_view" or "full_recompute"
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

type benchReport struct {
	Generated    string           `json:"generated"`
	GoOS         string           `json:"goos"`
	GoArch       string           `json:"goarch"`
	CPUs         int              `json:"cpus"`
	SeedCommit   string           `json:"seed_commit"`
	SeedNote     string           `json:"seed_note"`
	Results      []benchResult    `json:"results"`
	SeedBaseline []seedEntry      `json:"seed_baseline"`
	VsSeed       []improvement    `json:"improvement_vs_seed"`
	Profiles     []profileEntry   `json:"profiles"`
	Views        []viewBenchEntry `json:"views"`
	ViewNsRatio  float64          `json:"view_ns_ratio"` // incremental/recompute; < 1 means maintenance wins
	ViewNote     string           `json:"view_note"`
	Vet          []vetBench       `json:"vet"`
	VetNote      string           `json:"vet_note"`

	// E14–E15: streaming-executor ablation and plan-cache split.
	Streaming        []streamEntry        `json:"streaming"`
	StreamingVs      []streamImprovement  `json:"streaming_vs_materializing"`
	StreamingNote    string               `json:"streaming_note"`
	PlanCache        []planCacheEntry     `json:"plan_cache"`
	PlanCacheStats   *core.PlanCacheStats `json:"plan_cache_stats"`
	PlanCacheNsRatio float64              `json:"plan_cache_ns_ratio"` // warm/cold; < 1 means the cache wins
	PlanCacheNote    string               `json:"plan_cache_note"`

	// E16: persistent segment store — restart and query cost vs the WAL
	// backend.
	Disk             []diskEntry `json:"disk"`
	DiskRestartRatio float64     `json:"disk_restart_ratio"` // segment/wal open time; < 1 means segments win
	DiskNote         string      `json:"disk_note"`

	// E17: ingest-to-notification latency of the subscription subsystem.
	IngestLatency *streamSubReport `json:"ingest_latency"`

	// PR 9: per-pass wall time of the videolint suite over ./... .
	Lint       []lintEntry `json:"lint"`
	LintLoadMs float64     `json:"lint_load_ms"`
	LintNote   string      `json:"lint_note"`
}

// seedBaseline is the `go test -bench . -benchmem` output of the
// acceptance benchmarks measured at the seed commit (before this change)
// on the reference host, Intel Xeon @ 2.10GHz, linux/amd64.
var seedBaseline = []seedEntry{
	{"E5ArithScaling/within/n=1000", 1016883, 2038},
	{"E5ArithScaling/contains/n=1000", 392480257, 1010427},
	{"E8PointVsInterval/point/before", 19076, 227},
	{"E8PointVsInterval/point/contains", 3043, 54},
	{"E8PointVsInterval/point/overlaps", 7724, 85},
	{"E13JoinIndex/indexed", 988644, 9086},
}

// vetAcceptanceScript is the acceptance scenario of the static analyzer:
// a typo'd predicate, a provably dead rule, and an unreachable rule.
const vetAcceptanceScript = `rope(r1).
deep(X) :- ropee(X), X.depth > 3.
taut(X) :- rope(X), X.tension < 5, X.tension > 10.
spare(X) :- rope(X), X.kind = "static".
?- deep(X).
?- taut(X).
`

// syntheticChain builds an n-rule chain program with one dense-order
// constraint per rule — a worst-ish case for the dead-rule pass, since
// every rule body reaches the solver.
func syntheticChain(n int) string {
	var b strings.Builder
	b.WriteString("p0(r1).\n")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "p%d(X) :- p%d(X), X.w > %d.\n", i, i-1, i)
	}
	fmt.Fprintf(&b, "?- p%d(X).\n", n)
	return b.String()
}

// jsonArithStore mirrors bench_test.go's arithStore (same seed, same
// distribution) so the JSON numbers are comparable with `go test -bench`.
func jsonArithStore(n int) *store.Store {
	r := rand.New(rand.NewSource(7))
	st := store.New()
	for i := 0; i < n; i++ {
		lo := r.Float64() * float64(n)
		st.Put(object.NewInterval(object.OID(fmt.Sprintf("g%06d", i)),
			interval.FromPairs(lo, lo+1+r.Float64()*10)))
	}
	return st
}

// bestOf runs a benchmark three times and keeps the fastest, damping
// scheduler noise on shared hosts.
func bestOf(run func() testing.BenchmarkResult) testing.BenchmarkResult {
	best := run()
	for i := 0; i < 2; i++ {
		if r := run(); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

func measureEngine(st *store.Store, prog datalog.Program, opts ...datalog.Option) (testing.BenchmarkResult, float64) {
	constraint.ResetMemo()
	res := bestOf(func() testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e, err := datalog.NewEngine(st, prog, opts...)
				if err != nil {
					b.Fatal(err)
				}
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	return res, constraint.MemoSnapshot().HitRate()
}

func measureFn(fn func(i int)) (testing.BenchmarkResult, float64) {
	constraint.ResetMemo()
	res := bestOf(func() testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn(i)
			}
		})
	})
	return res, constraint.MemoSnapshot().HitRate()
}

func runJSON(outPath string) {
	report := benchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		SeedCommit: "cf6178b",
		SeedNote: "seed_baseline measured with `go test -bench . -benchmem` at the seed commit " +
			"on Intel Xeon @ 2.10GHz, linux/amd64; ratios are current/seed",
		SeedBaseline: seedBaseline,
	}
	add := func(bench, config string, res testing.BenchmarkResult, hitRate float64) {
		report.Results = append(report.Results, benchResult{
			Bench:       bench,
			Config:      config,
			NsPerOp:     float64(res.NsPerOp()),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			MemoHitRate: hitRate,
			Iterations:  res.N,
		})
		fmt.Printf("%-40s %-24s %14.0f ns/op %10d allocs/op  memo hit %.2f\n",
			bench, config, float64(res.NsPerOp()), res.AllocsPerOp(), hitRate)
	}

	engineConfigs := []struct {
		name string
		opts []datalog.Option
	}{
		{"default", nil},
		{"no_plan_cache", []datalog.Option{datalog.WithoutPlanCache()}},
		{"no_constraint_memo", []datalog.Option{datalog.WithoutConstraintMemo()}},
		{"seed_equivalent", []datalog.Option{datalog.WithoutPlanCache(), datalog.WithoutConstraintMemo()}},
	}

	// E5: dense-order entailment workloads.
	frame := object.Temporal(interval.FromPairs(0, 500))
	within := datalog.NewProgram(datalog.NewRule(
		datalog.Rel("within", datalog.Var("G")),
		datalog.Interval(datalog.Var("G")),
		datalog.Entails(datalog.AttrOp(datalog.Var("G"), "duration"),
			datalog.TermOp(datalog.Const(frame))),
	))
	contains := datalog.NewProgram(datalog.NewRule(
		datalog.Rel("contains", datalog.Var("G1"), datalog.Var("G2")),
		datalog.Interval(datalog.Var("G1")),
		datalog.Interval(datalog.Var("G2")),
		datalog.Entails(datalog.AttrOp(datalog.Var("G2"), "duration"),
			datalog.AttrOp(datalog.Var("G1"), "duration")),
	))
	arith := jsonArithStore(1000)
	for _, cfg := range engineConfigs {
		res, hit := measureEngine(arith, within, cfg.opts...)
		add("E5ArithScaling/within/n=1000", cfg.name, res, hit)
	}
	for _, cfg := range engineConfigs {
		res, hit := measureEngine(arith, contains, cfg.opts...)
		add("E5ArithScaling/contains/n=1000", cfg.name, res, hit)
	}

	// E8: point-based temporal comparers (direct solver calls; the plan
	// cache is not involved, so the only ablation is the memo).
	r := rand.New(rand.NewSource(5))
	const pairs = 512
	gs := make([]interval.Generalized, pairs)
	hs := make([]interval.Generalized, pairs)
	for i := range gs {
		n := 1 + r.Intn(3)
		spans := make([]interval.Span, n)
		for j := range spans {
			lo := r.Float64() * 100
			spans[j] = interval.Closed(lo, lo+r.Float64()*20)
		}
		gs[i] = interval.New(spans...)
		lo := r.Float64() * 100
		hs[i] = interval.New(interval.Closed(lo, lo+r.Float64()*30))
	}
	con := temporal.Constraint{}
	pointCases := []struct {
		name string
		fn   func(g, h interval.Generalized) bool
	}{
		{"E8PointVsInterval/point/before", con.Before},
		{"E8PointVsInterval/point/contains", con.Contains},
		{"E8PointVsInterval/point/overlaps", con.Overlaps},
	}
	for _, pc := range pointCases {
		fn := pc.fn
		res, hit := measureFn(func(i int) { fn(gs[i%pairs], hs[i%pairs]) })
		add(pc.name, "default", res, hit)
		prev := constraint.SetMemoEnabled(false)
		res, _ = measureFn(func(i int) { fn(gs[i%pairs], hs[i%pairs]) })
		constraint.SetMemoEnabled(prev)
		add(pc.name, "no_constraint_memo", res, 0)
	}

	// E13: relational join with the compiled most-selective index probe.
	edges := store.New()
	for i := 0; i < 500; i++ {
		edges.AddFact(store.NewFact("edge",
			object.Str(fmt.Sprintf("n%03d", i)), object.Str(fmt.Sprintf("n%03d", (i+13)%500))))
	}
	hop2 := datalog.NewProgram(datalog.NewRule(
		datalog.Rel("hop2", datalog.Var("X"), datalog.Var("Z")),
		datalog.Rel("edge", datalog.Var("X"), datalog.Var("Y")),
		datalog.Rel("edge", datalog.Var("Y"), datalog.Var("Z")),
	))
	for _, cfg := range engineConfigs {
		res, hit := measureEngine(edges, hop2, cfg.opts...)
		add("E13JoinIndex/indexed", cfg.name, res, hit)
	}

	// Profiled runs of the engine workloads under the default
	// configuration: where each workload spends its time, per rule and per
	// round, from the engine's own profiler.
	profiled := func(bench string, st *store.Store, prog datalog.Program) {
		e, err := datalog.NewEngine(st, prog, datalog.WithProfiling())
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: profile %s: %v\n", bench, err)
			os.Exit(1)
		}
		if err := e.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "bench: profile %s: %v\n", bench, err)
			os.Exit(1)
		}
		rs := e.Stats()
		report.Profiles = append(report.Profiles, profileEntry{
			Bench:       bench,
			Rounds:      rs.Rounds,
			SolverSteps: rs.SolverSteps,
			MemoHits:    rs.MemoHits,
			MemoMisses:  rs.MemoMisses,
			Profile:     e.Profile(),
		})
	}
	profiled("E5ArithScaling/within/n=1000", arith, within)
	profiled("E5ArithScaling/contains/n=1000", arith, contains)
	profiled("E13JoinIndex/indexed", edges, hop2)

	// Static-analyzer overhead: one full `videoql vet` pass per script —
	// parse, the five analyzer passes, and every solver call — measured
	// the same way as the engine workloads for direct comparison with the
	// E5/E13 numbers above.
	vetScripts := []struct{ name, src string }{
		{"Vet/acceptance_combined", vetAcceptanceScript},
		{"Vet/synthetic_chain_200", syntheticChain(200)},
	}
	examplePaths, _ := filepath.Glob(filepath.FromSlash("examples/scripts/*.vql"))
	sort.Strings(examplePaths)
	for _, p := range examplePaths {
		src, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		vetScripts = append(vetScripts, struct{ name, src string }{
			"Vet/" + strings.TrimSuffix(filepath.Base(p), ".vql"), string(src)})
	}
	for _, vs := range vetScripts {
		db := core.New()
		src := vs.src
		var ds []analyze.Diagnostic
		res, _ := measureFn(func(int) { ds, _ = db.Vet(src) })
		report.Vet = append(report.Vet, vetBench{
			Bench:       vs.name,
			NsPerOp:     float64(res.NsPerOp()),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			Diagnostics: len(ds),
		})
		fmt.Printf("%-40s %-24s %14.0f ns/op %10d allocs/op  %d diagnostics\n",
			vs.name, "analyze", float64(res.NsPerOp()), res.AllocsPerOp(), len(ds))
		db.Close()
	}
	report.VetNote = "each Vet/* entry is a full db.Vet pass (parse + all analyzer passes, solver-backed " +
		"dead-rule detection included); compare ns_per_op with the E5/E13 evaluation workloads above"

	// View maintenance: the per-mutation cost of keeping a transitive
	// closure current over a large edge base. One side-edge into the
	// middle of a long chain is toggled on and off; the incremental view
	// applies the one-fact delta (semi-naive insertion or DRed deletion),
	// the recompute baseline re-evaluates the whole closure — which is
	// exactly what every read paid before materialized views existed.
	const chain = 200
	buildChainDB := func() *core.DB {
		db := core.New()
		for _, rule := range []string{
			"reach(X, Y) :- edge(X, Y)",
			"reach(X, Z) :- reach(X, Y), edge(Y, Z)",
		} {
			if err := db.DefineRule(rule); err != nil {
				fmt.Fprintf(os.Stderr, "bench: views: %v\n", err)
				os.Exit(1)
			}
		}
		for i := 0; i < chain-1; i++ {
			if err := db.Relate("edge",
				object.OID(fmt.Sprintf("n%03d", i)), object.OID(fmt.Sprintf("n%03d", i+1))); err != nil {
				fmt.Fprintf(os.Stderr, "bench: views: %v\n", err)
				os.Exit(1)
			}
		}
		return db
	}
	toggler := func(db *core.DB) func() {
		on := false
		// Attach near the tail: the delta closes ~20 new reach tuples, so
		// maintenance work is proportional to the change, not the base.
		mid := object.OID(fmt.Sprintf("n%03d", chain-20))
		return func() {
			if on {
				if _, err := db.Unrelate("edge", "side", mid); err != nil {
					fmt.Fprintf(os.Stderr, "bench: views: %v\n", err)
					os.Exit(1)
				}
			} else {
				if err := db.Relate("edge", "side", mid); err != nil {
					fmt.Fprintf(os.Stderr, "bench: views: %v\n", err)
					os.Exit(1)
				}
			}
			on = !on
		}
	}
	addView := func(mode string, res testing.BenchmarkResult) {
		report.Views = append(report.Views, viewBenchEntry{
			Bench:       fmt.Sprintf("ViewMaintenance/closure/chain=%d", chain),
			Mode:        mode,
			NsPerOp:     float64(res.NsPerOp()),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			Iterations:  res.N,
		})
		fmt.Printf("%-40s %-24s %14.0f ns/op %10d allocs/op\n",
			fmt.Sprintf("ViewMaintenance/closure/chain=%d", chain), mode,
			float64(res.NsPerOp()), res.AllocsPerOp())
	}
	{
		db := buildChainDB()
		if _, err := db.Materialize("closure", "?- reach(X, Y)"); err != nil {
			fmt.Fprintf(os.Stderr, "bench: views: %v\n", err)
			os.Exit(1)
		}
		flip := toggler(db)
		res, _ := measureFn(func(int) {
			flip()
			if _, err := db.View("closure"); err != nil {
				fmt.Fprintf(os.Stderr, "bench: views: %v\n", err)
				os.Exit(1)
			}
		})
		addView("incremental_view", res)
		db.Close()
	}
	{
		db := buildChainDB()
		flip := toggler(db)
		res, _ := measureFn(func(int) {
			flip()
			if _, err := db.Query("?- reach(X, Y)"); err != nil {
				fmt.Fprintf(os.Stderr, "bench: views: %v\n", err)
				os.Exit(1)
			}
		})
		addView("full_recompute", res)
		db.Close()
	}
	report.ViewNsRatio = report.Views[0].NsPerOp / report.Views[1].NsPerOp
	report.ViewNote = "per-mutation cost of one view read after toggling one edge fact; " +
		"incremental_view maintains via semi-naive insertion / DRed deletion, " +
		"full_recompute re-evaluates the goal from scratch (ratio < 1 means maintenance wins)"

	// E14: streaming executor vs materializing ablation; E15: plan-cache
	// cold/warm query latency. Both enforce their acceptance thresholds.
	runStreamingJSON(&report)

	// E16: persistent segment store restart/query cost vs the WAL backend.
	runDiskJSON(&report)

	// E17: ingest-to-notification latency of live subscriptions; enforces
	// exact convergence and zero drops.
	runStreamSubJSON(&report)

	// Videolint pass timing over the whole tree.
	runLintJSON(&report)

	// Improvement ratios for the default configuration against the seed.
	for _, se := range seedBaseline {
		for _, br := range report.Results {
			if br.Bench == se.Bench && br.Config == "default" {
				report.VsSeed = append(report.VsSeed, improvement{
					Bench:       se.Bench,
					NsRatio:     br.NsPerOp / se.NsPerOp,
					AllocsRatio: float64(br.AllocsPerOp) / float64(se.AllocsPerOp),
				})
			}
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", outPath)
}
