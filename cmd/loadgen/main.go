// Command loadgen drives a videodb server with traffic shaped like a
// real archive front end and measures how it degrades (experiment E18).
//
// Usage:
//
//	loadgen [-url http://host:port]               target an existing server
//	        [-max-concurrent 8] [-queue-depth 32] [-per-tenant]
//	        [-query-timeout 2s]                   in-process server knobs
//	        [-seed 1] [-corpus-duration 600] [-objects 40]
//	        [-clients 100000] [-zipf 1.1]
//	        [-steps 100,200,400,800,1600,3200] [-step-duration 5s]
//	        [-timeout 2s] [-smoke] [-o BENCH_PR10.json]
//
// Without -url it starts an in-process server (admission control per the
// flags) over a videogen corpus, so one command reproduces the whole
// experiment. The generator is open-loop: requests are dispatched on a
// fixed schedule at each offered-load step regardless of how fast the
// server answers — exactly the regime where a server without admission
// control collapses. Clients are simulated as a zipfian population
// (-clients distinct API keys, a few hot ones sending most traffic) and
// each request draws from a zipfian mix of query templates over the
// corpus (cheap fact probes through a self-join scan).
//
// Per step it records sent/200/429/503, client timeouts, latency
// percentiles of accepted requests, throughput, and reject rate, then
// writes all steps to -o (BENCH_PR10.json format). It exits non-zero if
// graceful degradation is violated: beyond the first step that rejects
// (saturation), accepted-request p99 must stay within 2x the
// pre-saturation p99, and no accepted request may be dropped (503).
// -smoke shrinks everything to a ~30s CI-sized run with the same
// assertions.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"videodb/internal/core"
	"videodb/internal/server"
	"videodb/internal/video"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type config struct {
	url           string
	maxConcurrent int
	queueDepth    int
	perTenant     bool
	queryTimeout  time.Duration

	seed           int64
	corpusDuration float64
	objects        int

	clients int
	zipfS   float64
	steps   []float64
	stepDur time.Duration
	timeout time.Duration
	out     string
	smoke   bool
}

func parseFlags() (config, error) {
	var c config
	flag.StringVar(&c.url, "url", "", "target server base URL (default: start an in-process server)")
	flag.IntVar(&c.maxConcurrent, "max-concurrent", 0, "in-process server: max concurrent evaluations (0 = 2x CPUs)")
	flag.IntVar(&c.queueDepth, "queue-depth", -1, "in-process server: admission wait-queue depth (-1 = 2x max-concurrent)")
	flag.BoolVar(&c.perTenant, "per-tenant", false, "in-process server: per-tenant admission limits")
	flag.DurationVar(&c.queryTimeout, "query-timeout", 2*time.Second, "in-process server: per-query evaluation bound")
	flag.Int64Var(&c.seed, "seed", 1, "random seed (corpus and traffic)")
	flag.Float64Var(&c.corpusDuration, "corpus-duration", 600, "videogen corpus length in seconds")
	flag.IntVar(&c.objects, "objects", 40, "videogen corpus object count")
	flag.IntVar(&c.clients, "clients", 100000, "simulated client population (zipfian)")
	flag.Float64Var(&c.zipfS, "zipf", 1.1, "zipf skew for clients and query mix (>1)")
	steps := flag.String("steps", "100,200,400,800,1600,3200", "offered-load steps in requests/second")
	flag.DurationVar(&c.stepDur, "step-duration", 5*time.Second, "time spent at each offered-load step")
	flag.DurationVar(&c.timeout, "timeout", 2*time.Second, "client-side request timeout")
	flag.StringVar(&c.out, "o", "BENCH_PR10.json", "output JSON file")
	flag.BoolVar(&c.smoke, "smoke", false, "CI-sized run: small corpus, low load, same assertions")
	flag.Parse()

	if c.smoke {
		c.corpusDuration = 120
		c.objects = 20
		c.clients = 1000
		*steps = "50,150,400"
		c.stepDur = 3 * time.Second
	}
	if c.maxConcurrent <= 0 {
		// Evaluation is CPU-bound: slots beyond the core count just make
		// admitted queries degrade each other instead of queueing excess
		// at the door, which is exactly what E18 shows going wrong.
		c.maxConcurrent = 2 * runtime.NumCPU()
	}
	if c.queueDepth < 0 {
		c.queueDepth = 2 * c.maxConcurrent
	}
	for _, f := range strings.Split(*steps, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return c, fmt.Errorf("bad -steps entry %q", f)
		}
		c.steps = append(c.steps, v)
	}
	return c, nil
}

// queryTemplates is the zipfian query mix, ordered hot-to-cold so the
// zipf draw makes cheap probes dominate with a heavy tail of scans —
// the shape of an interactive archive workload.
func queryTemplates(objects []string, rng *rand.Rand) []func() string {
	pick := func() string { return objects[rng.Intn(len(objects))] }
	return []func() string{
		func() string { return fmt.Sprintf("?- appears_with(%s, %s, S).", pick(), pick()) },
		func() string { return fmt.Sprintf("?- Interval(G), %s in G.entities.", pick()) },
		func() string { return "?- appears_with(A, B, S)." },
		func() string { return "?- appears_with(A, B, S), appears_with(B, C, S)." },
	}
}

// startServer builds the corpus, loads it, and serves on a loopback
// listener. It returns the base URL, the corpus object names, and a
// shutdown function.
func startServer(c config) (string, []string, func(), error) {
	seq := video.Generate(video.GenConfig{
		Seed:        c.seed,
		DurationSec: c.corpusDuration,
		NumObjects:  c.objects,
	})
	var script bytes.Buffer
	if err := video.WriteVQL(&script, seq); err != nil {
		return "", nil, nil, err
	}
	db := core.New()
	if _, err := db.LoadScript(script.String()); err != nil {
		return "", nil, nil, err
	}
	api := server.New(db,
		server.WithQueryTimeout(c.queryTimeout),
		server.WithAdmission(server.AdmissionConfig{
			MaxConcurrent: c.maxConcurrent,
			QueueDepth:    c.queueDepth,
			PerTenant:     c.perTenant,
		}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	hs := &http.Server{Handler: api}
	go hs.Serve(ln)
	stop := func() {
		api.Close()
		hs.Close()
		db.Close()
	}
	return "http://" + ln.Addr().String(), seq.Objects(), stop, nil
}

// stepResult is one offered-load step's measurements.
type stepResult struct {
	Bench         string  `json:"bench"`
	OfferedRPS    float64 `json:"offered_rps"`
	Sent          int     `json:"sent"`
	OK            int     `json:"ok"`
	Rejected429   int     `json:"rejected_429"`
	Shed503       int     `json:"shed_503"`
	ClientTimeout int     `json:"client_timeout"`
	OtherErrors   int     `json:"other_errors"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	RejectRate    float64 `json:"reject_rate"`
}

type reqOutcome struct {
	status  int // 0 = transport error, -1 = client timeout
	latency time.Duration
}

// runStep offers rate req/s for dur, open-loop: dispatch times are fixed
// by the schedule, never by responses. Each request carries a zipfian
// client identity and query.
func runStep(c config, url string, client *http.Client, rate float64,
	objects []string, rng *rand.Rand) stepResult {

	n := int(rate * c.stepDur.Seconds())
	templates := queryTemplates(objects, rng)
	clientZipf := rand.NewZipf(rng, c.zipfS, 1, uint64(c.clients-1))
	queryZipf := rand.NewZipf(rng, c.zipfS, 1, uint64(len(templates)-1))

	outcomes := make([]reqOutcome, n)
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	for i := 0; i < n; i++ {
		// Draws happen on the pacer goroutine (rand is not safe for
		// concurrent use); only the network call fans out.
		tenant := fmt.Sprintf("client-%06d", clientZipf.Uint64())
		query := templates[queryZipf.Uint64()]()
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i] = doRequest(client, url, tenant, query)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := stepResult{
		Bench:      fmt.Sprintf("E18Load/offered=%grps", rate),
		OfferedRPS: rate,
		Sent:       n,
	}
	var okLat []time.Duration
	for _, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			res.OK++
			okLat = append(okLat, o.latency)
		case http.StatusTooManyRequests:
			res.Rejected429++
		case http.StatusServiceUnavailable:
			res.Shed503++
		case -1:
			res.ClientTimeout++
		default:
			res.OtherErrors++
		}
	}
	sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
	res.P50Ms = percentileMs(okLat, 0.50)
	res.P95Ms = percentileMs(okLat, 0.95)
	res.P99Ms = percentileMs(okLat, 0.99)
	if len(okLat) > 0 {
		res.MaxMs = float64(okLat[len(okLat)-1]) / 1e6
	}
	res.ThroughputRPS = float64(res.OK) / elapsed.Seconds()
	if n > 0 {
		res.RejectRate = float64(res.Rejected429) / float64(n)
	}
	return res
}

func doRequest(client *http.Client, url, tenant, query string) reqOutcome {
	body, _ := json.Marshal(map[string]string{"query": query})
	req, err := http.NewRequest(http.MethodPost, url+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return reqOutcome{}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-API-Key", tenant)
	began := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(began)
	if err != nil {
		if strings.Contains(err.Error(), "Client.Timeout") {
			return reqOutcome{status: -1, latency: lat}
		}
		return reqOutcome{latency: lat}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return reqOutcome{status: resp.StatusCode, latency: lat}
}

func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / 1e6
}

// report is the BENCH_PR10.json shape.
type report struct {
	Generated  string                 `json:"generated"`
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	CPUs       int                    `json:"cpus"`
	Experiment string                 `json:"experiment"`
	Note       string                 `json:"note"`
	Config     map[string]interface{} `json:"config"`
	Results    []stepResult           `json:"results"`
	Saturation *saturationJSON        `json:"saturation,omitempty"`
	Graceful   bool                   `json:"graceful_degradation"`
}

type saturationJSON struct {
	OfferedRPS    float64 `json:"offered_rps"` // first step that rejected
	BaselineP99Ms float64 `json:"baseline_p99_ms"`
	WorstP99Ms    float64 `json:"worst_accepted_p99_ms"`
}

// assess applies the E18 acceptance criteria and returns the failures.
func assess(results []stepResult, rep *report) []string {
	var problems []string
	for _, r := range results {
		if r.Shed503 > 0 {
			problems = append(problems,
				fmt.Sprintf("%s: %d accepted requests were dropped (503) — admission must reject up front", r.Bench, r.Shed503))
		}
	}
	sat := -1
	for i, r := range results {
		if r.Rejected429 > 0 {
			sat = i
			break
		}
	}
	if sat <= 0 {
		// Never saturated (or rejecting from the first step, leaving no
		// baseline): nothing to compare degradation against.
		rep.Graceful = len(problems) == 0
		return problems
	}
	baseline := 0.0
	for _, r := range results[:sat] {
		if r.P99Ms > baseline {
			baseline = r.P99Ms
		}
	}
	worst := baseline
	for _, r := range results[sat:] {
		if r.P99Ms > worst {
			worst = r.P99Ms
		}
	}
	rep.Saturation = &saturationJSON{
		OfferedRPS:    results[sat].OfferedRPS,
		BaselineP99Ms: baseline,
		WorstP99Ms:    worst,
	}
	if baseline > 0 && worst > 2*baseline {
		problems = append(problems, fmt.Sprintf(
			"accepted p99 beyond saturation %.1fms exceeds 2x pre-saturation p99 %.1fms", worst, baseline))
	}
	rep.Graceful = len(problems) == 0
	return problems
}

func run() error {
	c, err := parseFlags()
	if err != nil {
		return err
	}
	url := c.url
	objects := make([]string, c.objects)
	for i := range objects {
		objects[i] = fmt.Sprintf("obj%03d", i)
	}
	if url == "" {
		var stop func()
		url, objects, stop, err = startServer(c)
		if err != nil {
			return err
		}
		defer stop()
		log.Printf("loadgen: in-process server on %s (max-concurrent=%d queue-depth=%d per-tenant=%v)",
			url, c.maxConcurrent, c.queueDepth, c.perTenant)
	}

	client := &http.Client{
		Timeout: c.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        4096,
			MaxIdleConnsPerHost: 4096,
		},
	}
	rng := rand.New(rand.NewSource(c.seed))
	var results []stepResult
	for _, rate := range c.steps {
		r := runStep(c, url, client, rate, objects, rng)
		results = append(results, r)
		log.Printf("loadgen: offered %5.0f rps → ok=%d 429=%d 503=%d timeout=%d p50=%.1fms p99=%.1fms throughput=%.0f rps reject=%.1f%%",
			r.OfferedRPS, r.OK, r.Rejected429, r.Shed503, r.ClientTimeout, r.P50Ms, r.P99Ms, r.ThroughputRPS, 100*r.RejectRate)
	}

	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Experiment: "E18",
		Note: "open-loop zipfian load over a videogen corpus; accepted = 200, rejected = 429 (queue full), " +
			"shed = 503 (accepted then dropped — must be zero); latencies are accepted requests only",
		Config: map[string]interface{}{
			"maxConcurrent": c.maxConcurrent,
			"queueDepth":    c.queueDepth,
			"perTenant":     c.perTenant,
			"clients":       c.clients,
			"zipf":          c.zipfS,
			"stepSeconds":   c.stepDur.Seconds(),
			"smoke":         c.smoke,
		},
		Results: results,
	}
	problems := assess(results, &rep)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(c.out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("loadgen: wrote %s", c.out)
	if len(problems) > 0 {
		return fmt.Errorf("graceful degradation violated:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}
