// Command videolint runs the project's static-analysis suite
// (lockcheck, ctxcheck, errlatch, metriccheck — see internal/lint).
//
// Standalone:
//
//	videolint [-json] [-all] [packages]
//
// defaults to ./... and exits 1 when any unsuppressed diagnostic
// remains. -all also prints suppressed findings with their reasons.
//
// As a vet tool:
//
//	go vet -vettool=$(which videolint) ./...
//
// videolint speaks enough of the cmd/vet unitchecker protocol (-V=full
// version handshake, single vet.cfg argument) to run under the go
// toolchain; in that mode diagnostics go to stderr and a package with
// findings exits 2, matching vet's conventions.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"videodb/internal/lint"
)

func main() {
	// go vet probes the tool with -V=full before use.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		exe, _ := os.Executable()
		h := sha256.New()
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
		fmt.Printf("%s version devel buildID=%x\n", filepath.Base(exe), h.Sum(nil)[:16])
		return
	}
	// go vet asks which analyzer flags the tool supports; videolint
	// exposes none through vet (use the standalone mode for -json/-all).
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Under `go vet`, the sole argument is a *.cfg file describing one
	// package.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(runVetCfg(os.Args[1]))
	}

	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	showAll := flag.Bool("all", false, "also print suppressed diagnostics with their reasons")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: videolint [-json] [-all] [packages]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "videolint:", err)
		os.Exit(1)
	}
	diags, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "videolint:", err)
		os.Exit(1)
	}
	unsuppressed := lint.Unsuppressed(diags)

	if *jsonOut {
		out := struct {
			Diagnostics  []lint.Diagnostic `json:"diagnostics"`
			Suppressed   int               `json:"suppressed"`
			Unsuppressed int               `json:"unsuppressed"`
		}{diags, len(diags) - len(unsuppressed), len(unsuppressed)}
		if out.Diagnostics == nil {
			out.Diagnostics = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	} else {
		for _, d := range diags {
			if d.Suppressed && !*showAll {
				continue
			}
			fmt.Println(d)
		}
		if len(unsuppressed) > 0 {
			fmt.Fprintf(os.Stderr, "videolint: %d unsuppressed diagnostic(s)\n", len(unsuppressed))
		}
	}
	if len(unsuppressed) > 0 {
		os.Exit(1)
	}
}

// vetConfig is the subset of cmd/vet's unitchecker config videolint
// reads.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetCfg analyzes one package as directed by a vet.cfg and returns
// the process exit code (vet expects 2 when findings are reported).
func runVetCfg(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "videolint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "videolint: parsing vet config:", err)
		return 1
	}
	// videolint keeps no cross-package facts, but vet requires the
	// output file to exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "videolint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	pkg, err := lint.CheckFiles(fset, cfg.ImportPath, cfg.GoFiles, func(ipath string) string {
		if real, ok := cfg.ImportMap[ipath]; ok {
			ipath = real
		}
		return cfg.PackageFile[ipath]
	})
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "videolint:", err)
		return 1
	}
	diags, err := lint.Run([]*lint.Package{pkg}, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "videolint:", err)
		return 1
	}
	unsuppressed := lint.Unsuppressed(diags)
	for _, d := range unsuppressed {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(unsuppressed) > 0 {
		return 2
	}
	return 0
}
