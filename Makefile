GO ?= go

.PHONY: all tier1 build vet vet-examples lint test test-segment test-stream race bench bench-json loadgen-smoke clean

all: tier1

# tier1 is the acceptance gate: everything must build, vet clean, and pass.
tier1: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# vet-examples lints every shipped example script with the static
# analyzer (videoql vet). The examples are held to the strictest bar:
# any diagnostic at all — even an info — fails the target.
vet-examples:
	@out=$$($(GO) run ./cmd/videoql vet examples/scripts/*.vql); \
	status=$$?; \
	if [ $$status -ne 0 ] || [ -n "$$out" ]; then \
		echo "$$out"; \
		echo "vet-examples: example scripts must vet clean"; \
		exit 1; \
	fi; \
	echo "examples vet clean"

# lint runs the project's own static-analysis suite (videolint: lockcheck,
# ctxcheck, errlatch, metriccheck — see DESIGN.md §5j) over the whole tree,
# plus staticcheck when it is installed. The vettool binary is built into
# bin/ and reused; any unsuppressed diagnostic fails the target.
VIDEOLINT := bin/videolint

$(VIDEOLINT): $(wildcard internal/lint/*.go cmd/videolint/*.go)
	$(GO) build -o $(VIDEOLINT) ./cmd/videolint

lint: $(VIDEOLINT)
	./$(VIDEOLINT) ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

# test-segment re-runs the integration scenario against the persistent
# segment backend (the default run uses the WAL/mem backend).
test-segment:
	VIDEODB_TEST_BACKEND=segment $(GO) test ./internal/integration/...

# test-stream runs the live-subscription suite: the core pump and
# changelog tests, the SSE/webhook server surface, and the end-to-end
# replay demo (videogen -stream into a live server with an SSE
# subscriber converging on the one-shot answer), honoring
# VIDEODB_TEST_BACKEND for the integration part.
test-stream:
	$(GO) test -run 'TestSubscri|TestSSE|TestWebhook|TestServerClose|TestStatusWriter' ./internal/core/ ./internal/server/ ./internal/store/
	$(GO) test -run 'TestStreamingSubscriptionE2E' ./internal/integration/

# race exercises the parallel evaluator, the shared EDB/memo caches, the
# store write path (WAL fault injection, range-index readers, changelog),
# the segment backend (crash injection, mem/segment equivalence), the
# materialized-view oracle, and the server's observability counters
# under the race detector.
race:
	$(GO) test -race ./internal/datalog/... ./internal/store/... ./internal/core/... ./internal/server/...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# bench-json regenerates the machine-readable acceptance benchmark report.
bench-json:
	$(GO) run ./cmd/bench -json -out BENCH_PR9.json

# loadgen-smoke drives a short open-loop load sweep (experiment E18)
# against an in-process admission-controlled server and fails if
# overload is not graceful: any accepted-then-shed 503, or a
# post-saturation accepted p99 above 2x the pre-saturation baseline,
# is an error. ~30s. The full sweep is `go run ./cmd/loadgen` (see
# README "Operating under load").
loadgen-smoke:
	$(GO) run ./cmd/loadgen -smoke -o BENCH_PR10.json

clean:
	$(GO) clean ./...
