GO ?= go

.PHONY: all tier1 build vet test race bench bench-json clean

all: tier1

# tier1 is the acceptance gate: everything must build, vet clean, and pass.
tier1: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race exercises the parallel evaluator, the shared EDB/memo caches, and
# the server's observability counters under the race detector.
race:
	$(GO) test -race ./internal/datalog/... ./internal/server/...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# bench-json regenerates the machine-readable acceptance benchmark report.
bench-json:
	$(GO) run ./cmd/bench -json -out BENCH_PR3.json

clean:
	$(GO) clean ./...
