module videodb

go 1.22
